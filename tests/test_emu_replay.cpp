// Seed replay (DESIGN.md §12): two DeterministicClock runs of the same
// FaultPlan seed must write byte-identical JSONL traces — every emu_send /
// emu_deliver / emu_fault_* record, every virtual timestamp, in the same
// order — and a different seed must visibly change the stream.  This is the
// regression gate for the property that makes emulation failures
// re-runnable under a debugger.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "emu/emu_harness.h"
#include "emu/fault_transport.h"
#include "emu/loopback_transport.h"
#include "net/topology.h"
#include "obs/trace.h"
#include "opt/rate_control.h"
#include "opt/sunicast.h"
#include "routing/node_selection.h"

namespace omnc::emu {
namespace {

net::Topology diamond() {
  std::vector<std::vector<double>> p(4, std::vector<double>(4, 0.0));
  p[0][1] = p[1][0] = 0.8;
  p[0][2] = p[2][0] = 0.6;
  p[1][3] = p[3][1] = 0.7;
  p[2][3] = p[3][2] = 0.9;
  return net::Topology::from_link_matrix(p);
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// One deterministic chaos run, trace recorded to `path`.  Everything that
/// could differ between calls flows from `seed` alone; the trace path stays
/// out of the manifest, so identical seeds must yield identical bytes.
void run_traced(std::uint64_t seed, const std::string& path) {
  const net::Topology topo = diamond();
  const routing::SessionGraph graph = routing::select_nodes(topo, 0, 3);
  opt::RateControlParams params;
  params.capacity = 2e4;
  opt::DistributedRateControl control(graph, params);
  const opt::RateControlResult rc = control.run();
  std::vector<double> rates = rc.b;
  opt::rescale_to_feasible(graph, rates, params.capacity);

  LoopbackConfig loopback;
  loopback.seed = seed;
  LoopbackTransport base(graph.size(), link_matrix_from_topology(topo, graph),
                         loopback);
  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(FaultPlan::parse("chaos", &plan, &error)) << error;
  plan.seed = seed;
  FaultTransport faulty(base, plan);

  EmuConfig config;
  config.node.coding.generation_blocks = 8;
  config.node.coding.block_bytes = 64;
  config.node.cbr_bytes_per_s = 1e4;
  config.node.max_generations = 10;
  config.node.data_seed = seed;
  config.node.rng_seed = seed;
  config.clock_mode = vtime::ClockMode::kDeterministic;
  config.speedup = 20.0;
  config.wall_timeout_s = 45.0;

  obs::TraceRecorder recorder(path, "test_emu_replay", "preset=chaos", seed);
  ASSERT_TRUE(recorder.ok());
  obs::RunContext context;
  context.protocol = "omnc-emu";
  context.seed = seed;
  context.topology_nodes = topo.node_count();
  context.generation_blocks = config.node.coding.generation_blocks;
  context.block_bytes = config.node.coding.block_bytes;
  context.capacity_bytes_per_s = params.capacity;
  context.cbr_bytes_per_s = config.node.cbr_bytes_per_s;
  const int run_id = recorder.begin_run(context, {&graph});
  obs::RunSink sink(&recorder, run_id);

  EmuHarness harness(graph, faulty, config);
  harness.install_price_table(rates, rc.lambda, rc.beta, rc.iterations);
  harness.set_metric_sink(
      [&sink](const protocols::MetricEvent& event) { sink.on_event(event); });
  const EmuRunResult result = harness.run();
  EXPECT_TRUE(result.completed);
  EXPECT_TRUE(result.data_ok);
}

TEST(EmuSeedReplay, SameSeedWritesByteIdenticalTraces) {
  const std::string dir = ::testing::TempDir();
  const std::string path_a = dir + "replay_a.jsonl";
  const std::string path_b = dir + "replay_b.jsonl";
  const std::string path_c = dir + "replay_c.jsonl";
  run_traced(7, path_a);
  run_traced(7, path_b);
  run_traced(8, path_c);

  const std::string first = slurp(path_a);
  const std::string second = slurp(path_b);
  const std::string other = slurp(path_c);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second) << "same-seed deterministic traces diverged";
  EXPECT_NE(first, other) << "different seeds produced identical traces";

  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
  std::remove(path_c.c_str());
}

}  // namespace
}  // namespace omnc::emu

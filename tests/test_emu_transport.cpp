// Emulation transports: loopback determinism/loss/delay/overflow semantics,
// link-matrix construction from session graphs and topologies, and a UDP
// localhost smoke (ephemeral ports, round trip, stats).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "emu/loopback_transport.h"
#include "emu/udp_transport.h"
#include "net/topology.h"
#include "routing/node_selection.h"
#include "time/clock.h"

namespace omnc::emu {
namespace {

std::vector<std::uint8_t> message(std::uint8_t tag, std::size_t size = 16) {
  std::vector<std::uint8_t> bytes(size, tag);
  return bytes;
}

/// Drains node `to` and returns the sender of each delivered frame.
std::vector<int> drain_senders(Transport& transport, int to) {
  std::vector<int> senders;
  transport.poll(to, [&](int from, std::span<const std::uint8_t>) {
    senders.push_back(from);
  });
  return senders;
}

net::Topology diamond() {
  std::vector<std::vector<double>> p(4, std::vector<double>(4, 0.0));
  p[0][1] = p[1][0] = 0.8;
  p[0][2] = p[2][0] = 0.6;
  p[1][3] = p[3][1] = 0.7;
  p[2][3] = p[3][2] = 0.9;
  return net::Topology::from_link_matrix(p);
}

TEST(LoopbackTransport, BroadcastReachesAllPeersOnPerfectLinks) {
  LoopbackTransport transport(3, std::vector<double>(9, 1.0));
  transport.send(0, message(0xaa));
  EXPECT_EQ(drain_senders(transport, 1), (std::vector<int>{0}));
  EXPECT_EQ(drain_senders(transport, 2), (std::vector<int>{0}));
  // The sender does not hear itself, and polls are consuming.
  EXPECT_TRUE(drain_senders(transport, 0).empty());
  EXPECT_TRUE(drain_senders(transport, 1).empty());
  const TransportStats stats = transport.stats();
  EXPECT_EQ(stats.frames_sent, 1u);
  EXPECT_EQ(stats.copies_delivered, 2u);
  EXPECT_EQ(stats.copies_dropped, 0u);
}

TEST(LoopbackTransport, DeliversPayloadBytesIntact) {
  LoopbackTransport transport(2, std::vector<double>(4, 1.0));
  const std::vector<std::uint8_t> sent = message(0x5c, 100);
  transport.send(0, sent);
  std::vector<std::uint8_t> got;
  transport.poll(1, [&](int, std::span<const std::uint8_t> bytes) {
    got.assign(bytes.begin(), bytes.end());
  });
  EXPECT_EQ(got, sent);
}

TEST(LoopbackTransport, LossMatchesLinkProbability) {
  // p(0->1) = 0.7: over 4000 sends the delivered fraction concentrates
  // tightly around 0.7 (binomial sd ≈ 0.007).
  std::vector<double> link_p(4, 0.0);
  link_p[0 * 2 + 1] = 0.7;
  LoopbackConfig config;
  config.seed = 42;
  config.max_inbox = 100000;
  LoopbackTransport transport(2, link_p, config);
  const int sends = 4000;
  for (int k = 0; k < sends; ++k) transport.send(0, message(1));
  const double fraction =
      static_cast<double>(drain_senders(transport, 1).size()) / sends;
  EXPECT_NEAR(fraction, 0.7, 0.05);
  const TransportStats stats = transport.stats();
  EXPECT_EQ(stats.copies_delivered + stats.copies_dropped,
            static_cast<std::size_t>(sends));
}

TEST(LoopbackTransport, LossPatternIsSeedDeterministic) {
  // Same seed -> the k-th broadcast on a link sees the same fate, no matter
  // how sends interleave with polls.
  auto pattern = [](std::uint64_t seed) {
    std::vector<double> link_p(4, 0.0);
    link_p[0 * 2 + 1] = 0.5;
    LoopbackConfig config;
    config.seed = seed;
    config.max_inbox = 100000;
    LoopbackTransport transport(2, link_p, config);
    std::vector<bool> delivered;
    for (int k = 0; k < 200; ++k) {
      transport.send(0, message(1));
      delivered.push_back(!drain_senders(transport, 1).empty());
    }
    return delivered;
  };
  const std::vector<bool> first = pattern(7);
  EXPECT_EQ(first, pattern(7));
  EXPECT_NE(first, pattern(8));
}

TEST(LoopbackTransport, LinksDrawIndependentStreams) {
  // Loss on (0->1) must not perturb (0->2): a p = 0 link draws nothing and
  // a p = 1 link always delivers, whatever the sibling links do.
  std::vector<double> link_p(9, 0.0);
  link_p[0 * 3 + 1] = 0.5;
  link_p[0 * 3 + 2] = 1.0;
  LoopbackConfig config;
  config.max_inbox = 100000;
  LoopbackTransport transport(3, link_p, config);
  for (int k = 0; k < 100; ++k) transport.send(0, message(1));
  EXPECT_EQ(drain_senders(transport, 2).size(), 100u);
}

TEST(LoopbackTransport, DelayHoldsDeliveryUntilDue) {
  // Delay is measured in virtual seconds against the bound clock — no wall
  // sleeping involved.
  vtime::DeterministicClock clock;
  LoopbackConfig config;
  config.delay_s = 0.05;
  LoopbackTransport transport(2, std::vector<double>(4, 1.0), config);
  transport.bind_clock(&clock);
  transport.send(0, message(1));
  EXPECT_TRUE(drain_senders(transport, 1).empty());
  clock.advance_to(0.04);
  EXPECT_TRUE(drain_senders(transport, 1).empty());
  clock.advance_to(0.05);
  EXPECT_EQ(drain_senders(transport, 1).size(), 1u);
}

TEST(LoopbackTransport, DelayWithoutClockIsInstantaneous) {
  // Unbound transports (direct unit-test traffic) deliver immediately even
  // with a configured delay: clock_now() pins both send and poll to 0.
  LoopbackConfig config;
  config.delay_s = 0.05;
  LoopbackTransport transport(2, std::vector<double>(4, 1.0), config);
  transport.send(0, message(1));
  EXPECT_EQ(drain_senders(transport, 1).size(), 1u);
}

TEST(LoopbackTransport, FullInboxDropsNewCopies) {
  LoopbackConfig config;
  config.max_inbox = 4;
  LoopbackTransport transport(2, std::vector<double>(4, 1.0), config);
  for (int k = 0; k < 10; ++k) transport.send(0, message(1));
  EXPECT_EQ(drain_senders(transport, 1).size(), 4u);
  const TransportStats stats = transport.stats();
  EXPECT_EQ(stats.copies_dropped, 6u);
}

TEST(LoopbackTransport, ObserverSeesEveryEvent) {
  struct Recorder final : TransportObserver {
    std::size_t sends = 0, drops = 0, delivers = 0;
    void on_send(int, std::size_t) override { ++sends; }
    void on_drop(int, int, std::span<const std::uint8_t>) override { ++drops; }
    void on_deliver(int, int, std::size_t) override { ++delivers; }
  };
  LoopbackConfig config;
  config.max_inbox = 1;
  LoopbackTransport transport(2, std::vector<double>(4, 1.0), config);
  Recorder recorder;
  transport.set_observer(&recorder);
  transport.send(0, message(1));
  transport.send(0, message(2));  // inbox full: this copy drops at send time
  drain_senders(transport, 1);
  EXPECT_EQ(recorder.sends, 2u);
  EXPECT_EQ(recorder.delivers, 1u);
  EXPECT_EQ(recorder.drops, 1u);
}

TEST(LinkMatrix, FromGraphIsSymmetrizedOverDagEdges) {
  const net::Topology topo = diamond();
  const routing::SessionGraph graph = routing::select_nodes(topo, 0, 3);
  const std::vector<double> m = link_matrix_from_graph(graph);
  const int n = graph.size();
  ASSERT_EQ(m.size(), static_cast<std::size_t>(n * n));
  for (const auto& edge : graph.edges) {
    EXPECT_EQ(m[static_cast<std::size_t>(edge.from * n + edge.to)], edge.p);
    // Reciprocal channel: ACK/price floods travel the reverse direction.
    EXPECT_EQ(m[static_cast<std::size_t>(edge.to * n + edge.from)], edge.p);
  }
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(m[static_cast<std::size_t>(i * n + i)], 0.0);
  }
}

TEST(LinkMatrix, FromTopologyUsesReceptionProbabilities) {
  const net::Topology topo = diamond();
  const routing::SessionGraph graph = routing::select_nodes(topo, 0, 3);
  const std::vector<double> m = link_matrix_from_topology(topo, graph);
  const int n = graph.size();
  ASSERT_EQ(m.size(), static_cast<std::size_t>(n * n));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      EXPECT_DOUBLE_EQ(m[static_cast<std::size_t>(i * n + j)],
                       topo.prob(graph.node_id(i), graph.node_id(j)));
    }
  }
}

TEST(UdpTransport, BindsDistinctEphemeralPorts) {
  UdpTransport transport(4);
  std::set<std::uint16_t> ports;
  for (int i = 0; i < 4; ++i) {
    const std::uint16_t port = transport.port_of(i);
    EXPECT_NE(port, 0);
    ports.insert(port);
  }
  EXPECT_EQ(ports.size(), 4u);  // ephemeral binds never collide
}

TEST(UdpTransport, BroadcastRoundTripsWithSenderIdentity) {
  UdpTransport transport(3);
  const std::vector<std::uint8_t> sent = message(0x3f, 200);
  transport.send(0, sent);
  // Localhost delivery is fast but asynchronous; poll with a short grace.
  for (int to : {1, 2}) {
    std::vector<std::uint8_t> got;
    int from = -1;
    for (int attempt = 0; attempt < 200 && got.empty(); ++attempt) {
      transport.poll(to, [&](int sender, std::span<const std::uint8_t> bytes) {
        from = sender;
        got.assign(bytes.begin(), bytes.end());
      });
      if (got.empty()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    EXPECT_EQ(from, 0) << "receiver " << to;
    EXPECT_EQ(got, sent) << "receiver " << to;
  }
  const TransportStats stats = transport.stats();
  EXPECT_EQ(stats.frames_sent, 1u);
  EXPECT_EQ(stats.bytes_sent, sent.size());  // counted per broadcast
  EXPECT_EQ(stats.copies_delivered, 2u);
}

TEST(UdpTransport, OversizedDatagramIsCountedNotSheared) {
  // Regression: recvfrom without MSG_TRUNC reports the *clamped* length, so
  // a datagram larger than the receive buffer used to arrive as a sheared
  // prefix fed straight to the parser.  It must instead be discarded whole,
  // counted, and reported through the observer.
  struct TruncRecorder final : TransportObserver {
    int from = -2;
    int to = -2;
    std::size_t claimed = 0;
    std::size_t calls = 0;
    void on_send(int, std::size_t) override {}
    void on_drop(int, int, std::span<const std::uint8_t>) override {}
    void on_deliver(int, int, std::size_t) override {}
    void on_truncated(int f, int t, std::size_t bytes) override {
      from = f;
      to = t;
      claimed = bytes;
      ++calls;
    }
  };
  UdpConfig config;
  config.recv_chunk_bytes = 64;  // anything longer gets truncated by the OS
  UdpTransport transport(2, config);
  TruncRecorder recorder;
  transport.set_observer(&recorder);
  transport.send(0, message(0x7e, 200));
  std::size_t handler_calls = 0;
  for (int attempt = 0; attempt < 200 && recorder.calls == 0; ++attempt) {
    transport.poll(1, [&](int, std::span<const std::uint8_t>) {
      ++handler_calls;
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(handler_calls, 0u);  // nothing reaches the parser
  EXPECT_EQ(recorder.calls, 1u);
  EXPECT_EQ(recorder.from, 0);
  EXPECT_EQ(recorder.to, 1);
  EXPECT_EQ(recorder.claimed, 200u);  // MSG_TRUNC reports the full length
  const TransportStats stats = transport.stats();
  EXPECT_EQ(stats.datagrams_truncated, 1u);
  EXPECT_EQ(stats.copies_delivered, 0u);

  // Datagrams that fit still flow on the same socket afterwards.
  transport.send(0, message(0x11, 32));
  std::vector<std::uint8_t> got;
  for (int attempt = 0; attempt < 200 && got.empty(); ++attempt) {
    transport.poll(1, [&](int, std::span<const std::uint8_t> bytes) {
      got.assign(bytes.begin(), bytes.end());
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(got, message(0x11, 32));
}

TEST(UdpTransport, ReportsEffectiveReceiveBufferSize) {
  // The granted SO_RCVBUF (kernel-clamped, possibly doubled on Linux) must
  // be surfaced so receive-drop mysteries are diagnosable from stats alone.
  UdpTransport transport(2);
  const TransportStats stats = transport.stats();
  EXPECT_GT(stats.rcvbuf_effective_bytes, 0u);
  EXPECT_EQ(stats.socket_errors, 0u);
}

TEST(UdpTransport, EintrMidDrainRetriesInsteadOfStoppingEarly) {
  // Regression: poll() used to treat EINTR as "inbox drained" and return,
  // stranding queued datagrams until the next tick (and, under the mux's
  // readiness loop, until the next epoll edge).  With the deterministic
  // injector failing every other receive attempt, a single poll() call must
  // still hand over *everything* queued on the socket, retrying through
  // each injected interruption.
  UdpConfig config;
  config.batch_datagrams = 4;  // several recvmmsg calls per drain on Linux
  config.debug_eintr_every = 2;
  UdpTransport transport(2, config);
  const int sent = 10;
  for (int k = 0; k < sent; ++k) {
    transport.send(0, message(static_cast<std::uint8_t>(k), 32));
  }
  // Localhost is fast but asynchronous: wait until the kernel has queued
  // all ten, peeking with zero-consumption is not portable, so accumulate
  // across polls but require the tail to arrive through retried attempts.
  std::size_t delivered = 0;
  for (int attempt = 0; attempt < 500 && delivered < sent; ++attempt) {
    delivered += transport.poll(1, [&](int from,
                                       std::span<const std::uint8_t> bytes) {
      EXPECT_EQ(from, 0);
      EXPECT_EQ(bytes.size(), 32u);
    });
    if (delivered < sent) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  EXPECT_EQ(delivered, static_cast<std::size_t>(sent));
  const TransportStats stats = transport.stats();
  // The injector fired (every other attempt) and every one was retried, not
  // swallowed as end-of-drain.
  EXPECT_GT(stats.eintr_retries, 0u);
  EXPECT_EQ(stats.socket_errors, 0u);  // EINTR is not an error
}

TEST(UdpTransport, SinglePollDrainsABacklogAcrossBatches) {
  // The mux drains each node's socket once per tick: a backlog larger than
  // one recvmmsg batch must come out in that single poll() call, not one
  // batch per tick.
  UdpConfig config;
  config.batch_datagrams = 8;
  UdpTransport transport(2, config);
  const int sent = 50;
  for (int k = 0; k < sent; ++k) transport.send(0, message(0xab, 48));
  // Give the loopback queue a moment to absorb every datagram.
  std::size_t delivered = 0;
  for (int attempt = 0; attempt < 500; ++attempt) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    delivered = transport.poll(1, [](int, std::span<const std::uint8_t>) {});
    if (delivered == static_cast<std::size_t>(sent)) break;
    // Not everything was queued yet: drain the rest and retry fresh.
    std::size_t rest = 1;
    while (rest > 0) {
      rest = transport.poll(1, [](int, std::span<const std::uint8_t>) {});
    }
    for (int k = 0; k < sent; ++k) transport.send(0, message(0xab, 48));
  }
  EXPECT_EQ(delivered, static_cast<std::size_t>(sent));
}

TEST(UdpTransport, ReadinessReportsOnlyPendingSockets) {
  UdpTransport transport(3);
  std::vector<int> watched = {1, 2};
  const std::unique_ptr<TransportReadiness> readiness =
      transport.make_readiness(watched);
  if (readiness == nullptr) {
    GTEST_SKIP() << "no readiness backend on this platform";
  }
  std::vector<int> ready;
  ASSERT_TRUE(readiness->poll_ready(&ready));
  EXPECT_TRUE(ready.empty());  // nothing sent yet

  transport.send(0, message(0x44, 24));
  bool saw_1 = false, saw_2 = false;
  for (int attempt = 0; attempt < 500 && !(saw_1 && saw_2); ++attempt) {
    ready.clear();
    ASSERT_TRUE(readiness->poll_ready(&ready));
    for (const int node : ready) {
      if (node == 1) saw_1 = true;
      if (node == 2) saw_2 = true;
      EXPECT_NE(node, 0);  // node 0 is not in the watched set
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(saw_1);
  EXPECT_TRUE(saw_2);

  // Level-triggered: after draining, the sockets go quiet again.
  transport.poll(1, [](int, std::span<const std::uint8_t>) {});
  transport.poll(2, [](int, std::span<const std::uint8_t>) {});
  ready.clear();
  ASSERT_TRUE(readiness->poll_ready(&ready));
  EXPECT_TRUE(ready.empty());
}

TEST(UdpTransport, ManyInstancesCoexist) {
  // ctest -j safety in miniature: several transports at once, no port clash,
  // no cross-talk (distinct sockets).
  UdpTransport a(2);
  UdpTransport b(2);
  a.send(0, message(0x01));
  b.send(0, message(0x02));
  std::vector<std::uint8_t> got_a, got_b;
  for (int attempt = 0; attempt < 200 && (got_a.empty() || got_b.empty());
       ++attempt) {
    a.poll(1, [&](int, std::span<const std::uint8_t> bytes) {
      got_a.assign(bytes.begin(), bytes.end());
    });
    b.poll(1, [&](int, std::span<const std::uint8_t> bytes) {
      got_b.assign(bytes.begin(), bytes.end());
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(got_a, message(0x01));
  EXPECT_EQ(got_b, message(0x02));
}

}  // namespace
}  // namespace omnc::emu

#include "coding/encoder.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "galois/gf256.h"

namespace omnc::coding {
namespace {

TEST(SourceEncoder, PayloadIsLinearCombinationOfBlocks) {
  CodingParams params{5, 24};
  const Generation gen = Generation::synthetic(0, params, 11);
  SourceEncoder encoder(gen, 1);
  const std::vector<std::uint8_t> coefficients = {3, 0, 7, 1, 255};
  const CodedPacket pkt = encoder.packet_with_coefficients(coefficients);
  for (std::size_t byte = 0; byte < 24; ++byte) {
    std::uint8_t expected = 0;
    for (std::size_t block = 0; block < 5; ++block) {
      expected = gf::add(
          expected, gf::mul(coefficients[block], gen.block(block)[byte]));
    }
    EXPECT_EQ(pkt.payload[byte], expected) << "byte " << byte;
  }
}

TEST(SourceEncoder, UnitCoefficientsReproduceBlocks) {
  CodingParams params{4, 16};
  const Generation gen = Generation::synthetic(2, params, 5);
  SourceEncoder encoder(gen, 1);
  for (std::size_t block = 0; block < 4; ++block) {
    std::vector<std::uint8_t> unit(4, 0);
    unit[block] = 1;
    const CodedPacket pkt = encoder.packet_with_coefficients(unit);
    EXPECT_TRUE(std::equal(pkt.payload.begin(), pkt.payload.end(),
                           gen.block(block)));
  }
}

TEST(SourceEncoder, RandomPacketsNeverAllZeroCoefficients) {
  CodingParams params{3, 8};
  const Generation gen = Generation::synthetic(0, params, 1);
  SourceEncoder encoder(gen, 1);
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const CodedPacket pkt = encoder.next_packet(rng);
    const bool nonzero = std::any_of(pkt.coefficients.begin(),
                                     pkt.coefficients.end(),
                                     [](std::uint8_t c) { return c != 0; });
    EXPECT_TRUE(nonzero);
  }
}

TEST(SourceEncoder, HeaderFieldsPopulated) {
  CodingParams params{4, 8};
  const Generation gen = Generation::synthetic(9, params, 3);
  SourceEncoder encoder(gen, 0xDEAD);
  Rng rng(1);
  const CodedPacket pkt = encoder.next_packet(rng);
  EXPECT_EQ(pkt.session_id, 0xDEADu);
  EXPECT_EQ(pkt.generation_id, 9u);
  EXPECT_EQ(pkt.generation_blocks, 4);
  EXPECT_EQ(pkt.block_bytes, 8);
  EXPECT_EQ(encoder.generation_id(), 9u);
}

}  // namespace
}  // namespace omnc::coding

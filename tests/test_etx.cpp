#include "routing/etx.h"

#include <gtest/gtest.h>

#include "net/topology.h"

namespace omnc::routing {
namespace {

net::Topology diamond() {
  // 0 -> {1, 2} -> 3 with asymmetric qualities.
  std::vector<std::vector<double>> p(4, std::vector<double>(4, 0.0));
  p[0][1] = p[1][0] = 0.8;
  p[0][2] = p[2][0] = 0.5;
  p[1][3] = p[3][1] = 0.8;
  p[2][3] = p[3][2] = 0.9;
  return net::Topology::from_link_matrix(p);
}

TEST(Etx, LinkEtxIsInverseProbability) {
  const net::Topology topo = diamond();
  EXPECT_DOUBLE_EQ(link_etx(topo, 0, 1), 1.25);
  EXPECT_DOUBLE_EQ(link_etx(topo, 2, 3), 1.0 / 0.9);
  EXPECT_EQ(link_etx(topo, 0, 3), kUnreachable);
}

TEST(Etx, RoutePrefersLowerTotalEtx) {
  const net::Topology topo = diamond();
  // Via 1: 1.25 + 1.25 = 2.5; via 2: 2 + 1.11 = 3.11.
  const auto route = etx_route(topo, 0, 3);
  EXPECT_EQ(route, (std::vector<net::NodeId>{0, 1, 3}));
  EXPECT_NEAR(route_etx(topo, route), 2.5, 1e-9);
}

TEST(Etx, HopCount) {
  const net::Topology topo = diamond();
  EXPECT_EQ(etx_hop_count(topo, 0, 3), 2);
  EXPECT_EQ(etx_hop_count(topo, 0, 1), 1);
}

TEST(Etx, DisconnectedRoute) {
  std::vector<std::vector<double>> p(3, std::vector<double>(3, 0.0));
  p[0][1] = 0.9;
  const net::Topology topo = net::Topology::from_link_matrix(p);
  EXPECT_TRUE(etx_route(topo, 2, 0).empty());
  EXPECT_EQ(etx_hop_count(topo, 2, 0), 0);
}

TEST(Etx, TreeDistancesDecreaseTowardTarget) {
  const net::Topology topo = diamond();
  const ShortestPathTree tree = etx_tree_to(topo, 3);
  EXPECT_DOUBLE_EQ(tree.distance[3], 0.0);
  EXPECT_GT(tree.distance[0], tree.distance[1]);
  EXPECT_GT(tree.distance[0], tree.distance[2]);
  // Asymmetric links use the forward direction probability.
  EXPECT_NEAR(tree.distance[1], 1.25, 1e-9);
}

TEST(Etx, AsymmetricLinksUseDirectionalProbability) {
  std::vector<std::vector<double>> p(2, std::vector<double>(2, 0.0));
  p[0][1] = 0.5;
  p[1][0] = 0.25;
  const net::Topology topo = net::Topology::from_link_matrix(p);
  EXPECT_DOUBLE_EQ(link_etx(topo, 0, 1), 2.0);
  EXPECT_DOUBLE_EQ(link_etx(topo, 1, 0), 4.0);
}

}  // namespace
}  // namespace omnc::routing

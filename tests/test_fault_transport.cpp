// FaultTransport: plan parsing, Gilbert–Elliott statistics, partition /
// blackout windows, duplication / reordering, and the determinism contract —
// the same seed and plan must produce a byte-identical fault stream.  Every
// test drives the injector with a manual time source over a perfect loopback
// inner transport, so outcomes are pure functions of (seed, link, copy).
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "emu/fault_transport.h"
#include "emu/loopback_transport.h"

namespace omnc::emu {
namespace {

std::vector<std::uint8_t> message(std::uint8_t tag, std::size_t size = 24) {
  return std::vector<std::uint8_t>(size, tag);
}

std::vector<double> perfect_links(int n) {
  std::vector<double> m(static_cast<std::size_t>(n) * n, 1.0);
  for (int i = 0; i < n; ++i) m[static_cast<std::size_t>(i) * n + i] = 0.0;
  return m;
}

FaultPlan plan_from(const std::string& spec) {
  FaultPlan plan;
  std::string error;
  EXPECT_TRUE(FaultPlan::parse(spec, &plan, &error)) << error;
  return plan;
}

/// Serializes every FaultRecord the decorator emits, for exact comparison.
struct FaultLog final : TransportObserver {
  std::string log;
  std::size_t delivers = 0;
  void on_send(int, std::size_t) override {}
  void on_drop(int, int, std::span<const std::uint8_t>) override {}
  void on_deliver(int, int, std::size_t) override { ++delivers; }
  void on_fault(const FaultRecord& record) override {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "k%d %d->%d b%zu c%llu t%.6f\n",
                  static_cast<int>(record.kind), record.from, record.to,
                  record.bytes,
                  static_cast<unsigned long long>(record.link_copy),
                  record.time);
    log += buf;
  }
};

/// Counts handler invocations on one poll.
std::size_t poll_count(Transport& transport, int to) {
  std::size_t count = 0;
  transport.poll(to, [&](int, std::span<const std::uint8_t>) { ++count; });
  return count;
}

TEST(GilbertElliott, MeanLossMatchesStationaryFormula) {
  GilbertElliott ge{0.1, 0.3, 0.02, 0.85};
  // pi_bad = 0.1 / 0.4 = 0.25 -> 0.75 * 0.02 + 0.25 * 0.85.
  EXPECT_NEAR(ge.mean_loss(), 0.2275, 1e-12);
  GilbertElliott iid{0.0, 1.0, 0.3, 0.0};
  EXPECT_NEAR(iid.mean_loss(), 0.3, 1e-12);
  EXPECT_FALSE(GilbertElliott{}.enabled());
  EXPECT_TRUE(ge.enabled());
}

TEST(FaultPlan, ParsesDirectivesAndComposesPerLink) {
  const FaultPlan plan = plan_from(
      "seed=7; ge=0-1:0.1,0.3,0.02,0.85; dup=0-1:0.25; reorder=*:0.5,0.2; "
      "jitter=2-*:0.01; partition=2.0-4.0:1,2; blackout=1:2.5-4.5");
  EXPECT_EQ(plan.seed, 7u);
  ASSERT_EQ(plan.links.size(), 3u);  // 0-1 composed, *-*, 2-*
  EXPECT_EQ(plan.links[0].from, 0);
  EXPECT_EQ(plan.links[0].to, 1);
  EXPECT_NEAR(plan.links[0].ge.loss_bad, 0.85, 1e-12);
  EXPECT_NEAR(plan.links[0].duplicate_p, 0.25, 1e-12);
  EXPECT_EQ(plan.links[1].from, -1);
  EXPECT_NEAR(plan.links[1].reorder_p, 0.5, 1e-12);
  EXPECT_NEAR(plan.links[1].reorder_hold_s, 0.2, 1e-12);
  EXPECT_EQ(plan.links[2].from, 2);
  EXPECT_EQ(plan.links[2].to, -1);
  ASSERT_EQ(plan.partitions.size(), 1u);
  EXPECT_EQ(plan.partitions[0].isolated, (std::vector<int>{1, 2}));
  ASSERT_EQ(plan.blackouts.size(), 1u);
  EXPECT_EQ(plan.blackouts[0].node, 1);
  EXPECT_FALSE(plan.empty());
  EXPECT_FALSE(plan.describe().empty());
}

TEST(FaultPlan, LossShorthandIsIidGilbertElliott) {
  const FaultPlan plan = plan_from("loss=*:0.3");
  ASSERT_EQ(plan.links.size(), 1u);
  EXPECT_NEAR(plan.links[0].ge.mean_loss(), 0.3, 1e-12);
}

TEST(FaultPlan, EveryPresetParsesNonEmpty) {
  for (const std::string& name : FaultPlan::preset_names()) {
    FaultPlan plan;
    std::string error;
    EXPECT_TRUE(FaultPlan::parse(name, &plan, &error)) << name << ": " << error;
    EXPECT_FALSE(plan.empty()) << name;
  }
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  FaultPlan plan;
  std::string error;
  EXPECT_FALSE(FaultPlan::parse("bogus=1", &plan, &error));
  EXPECT_NE(error.find("bogus"), std::string::npos);
  EXPECT_FALSE(FaultPlan::parse("ge=*:0.1", &plan, &error));  // arity
  EXPECT_FALSE(FaultPlan::parse("partition=2.0:1", &plan, &error));
  EXPECT_FALSE(FaultPlan::parse("blackout=1:5-2", &plan, &error));  // inverted
  EXPECT_FALSE(FaultPlan::parse("loss", &plan, &error));  // no '='
  EXPECT_TRUE(FaultPlan::parse("", &plan, &error));  // empty plan is valid
  EXPECT_TRUE(plan.empty());
}

TEST(FaultTransport, GilbertElliottLossTracksStationaryMean) {
  LoopbackTransport inner(2, perfect_links(2));
  FaultTransport transport(inner, plan_from("seed=3; ge=*:0.1,0.3,0.02,0.85"));
  double now = 0.0;
  transport.set_time_source([&] { return now; });
  const int sends = 4000;
  std::size_t delivered = 0;
  for (int k = 0; k < sends; ++k) {
    transport.send(0, message(1));
    delivered += poll_count(transport, 1);
    now += 0.001;
  }
  const FaultStats stats = transport.fault_stats();
  EXPECT_EQ(delivered + stats.lost, static_cast<std::size_t>(sends));
  // Burst correlation widens the band vs the i.i.d. binomial sd (~0.007).
  EXPECT_NEAR(static_cast<double>(stats.lost) / sends, 0.2275, 0.06);
  // The aggregate stats fold injector kills into the drop column.
  const TransportStats agg = transport.stats();
  EXPECT_EQ(agg.copies_delivered, delivered);
  EXPECT_EQ(agg.copies_dropped, stats.lost);
}

TEST(FaultTransport, PartitionCutsOnlyCrossingLinksInsideWindow) {
  LoopbackTransport inner(3, perfect_links(3));
  FaultTransport transport(inner, plan_from("partition=1.0-2.0:2"));
  double now = 0.5;
  transport.set_time_source([&] { return now; });

  // Before the window everything flows.
  transport.send(0, message(1));
  EXPECT_EQ(poll_count(transport, 1), 1u);
  EXPECT_EQ(poll_count(transport, 2), 1u);

  // Inside: links crossing the {2} | {0, 1} cut die, 0<->1 is untouched.
  now = 1.5;
  transport.send(0, message(2));
  transport.send(2, message(3));
  EXPECT_EQ(poll_count(transport, 1), 1u);  // 0->1 survives (2->1 is cut)
  EXPECT_EQ(poll_count(transport, 2), 0u);  // 0->2 cut
  EXPECT_EQ(poll_count(transport, 0), 0u);  // 2->0 cut
  EXPECT_EQ(transport.fault_stats().partition_drops, 3u);

  // The end of the window is exclusive: at t = 2.0 the cut has healed.
  now = 2.0;
  transport.send(0, message(4));
  EXPECT_EQ(poll_count(transport, 2), 1u);
}

TEST(FaultTransport, BlackoutSuppressesBothDirections) {
  LoopbackTransport inner(2, perfect_links(2));
  FaultTransport transport(inner, plan_from("blackout=1:1.0-2.0"));
  double now = 1.5;
  transport.set_time_source([&] { return now; });

  // A crashed node transmits nothing — the frame never reaches the channel.
  transport.send(1, message(1));
  EXPECT_EQ(inner.stats().frames_sent, 0u);
  EXPECT_EQ(poll_count(transport, 0), 0u);

  // ...and receives nothing: copies arriving during the window die.
  transport.send(0, message(2));
  EXPECT_EQ(poll_count(transport, 1), 0u);
  const FaultStats stats = transport.fault_stats();
  EXPECT_EQ(stats.blackout_tx_suppressed, 1u);
  EXPECT_EQ(stats.blackout_rx_drops, 1u);

  // After restart the node is back on the air.
  now = 2.5;
  transport.send(1, message(3));
  EXPECT_EQ(poll_count(transport, 0), 1u);
}

TEST(FaultTransport, DuplicateDeliversTheCopyTwice) {
  LoopbackTransport inner(2, perfect_links(2));
  FaultTransport transport(inner, plan_from("dup=*:1.0"));
  double now = 0.0;
  transport.set_time_source([&] { return now; });
  transport.send(0, message(0x5c));
  std::size_t handler_calls = 0;
  std::vector<std::uint8_t> got;
  transport.poll(1, [&](int from, std::span<const std::uint8_t> bytes) {
    EXPECT_EQ(from, 0);
    got.assign(bytes.begin(), bytes.end());
    ++handler_calls;
  });
  EXPECT_EQ(handler_calls, 2u);
  EXPECT_EQ(got, message(0x5c));
  EXPECT_EQ(transport.fault_stats().duplicated, 1u);
  EXPECT_EQ(transport.fault_stats().delivered, 2u);
}

TEST(FaultTransport, ReorderHoldsTheCopyUntilDue) {
  LoopbackTransport inner(2, perfect_links(2));
  FaultTransport transport(inner, plan_from("reorder=*:1.0,0.5"));
  double now = 0.0;
  transport.set_time_source([&] { return now; });
  transport.send(0, message(7));
  EXPECT_EQ(poll_count(transport, 1), 0u);  // held back
  EXPECT_EQ(transport.fault_stats().reordered, 1u);
  now = 0.3;
  EXPECT_EQ(poll_count(transport, 1), 0u);  // still early
  now = 0.51;
  EXPECT_EQ(poll_count(transport, 1), 1u);  // released late
  // A held copy overtaken by a fresh one arrives after it: reordering.
  transport.send(0, message(8));
  transport.send(0, message(9));
  std::vector<std::uint8_t> first_tag;
  now = 0.6;
  transport.poll(1, [&](int, std::span<const std::uint8_t> bytes) {
    if (first_tag.empty()) first_tag.assign(bytes.begin(), bytes.begin() + 1);
  });
  now = 1.2;
  EXPECT_EQ(poll_count(transport, 1), 2u);
}

TEST(FaultTransport, FaultStreamIsByteIdenticalForSameSeed) {
  // Scripted single-threaded schedule + manual clock: the emitted fault
  // stream must be byte-identical across runs with the same seed, and
  // different for a different seed (the acceptance determinism gate).
  const auto run = [](std::uint64_t seed) {
    LoopbackTransport inner(3, perfect_links(3));
    FaultPlan plan = plan_from(
        "ge=*:0.2,0.4,0.05,0.9; dup=*:0.2; reorder=*:0.3,0.05; "
        "jitter=*:0.02");
    plan.seed = seed;
    FaultTransport transport(inner, std::move(plan));
    double now = 0.0;
    transport.set_time_source([&] { return now; });
    FaultLog log;
    transport.set_observer(&log);
    for (int round = 0; round < 200; ++round) {
      transport.send(round % 3, message(static_cast<std::uint8_t>(round)));
      for (int to = 0; to < 3; ++to) poll_count(transport, to);
      now += 0.01;
    }
    EXPECT_FALSE(log.log.empty());
    EXPECT_GT(log.delivers, 0u);
    return log.log;
  };
  const std::string first = run(11);
  EXPECT_EQ(first, run(11));
  EXPECT_NE(first, run(12));
}

TEST(FaultTransport, UnconfiguredLinksPassThroughUntouched) {
  // Faults scoped to 0->1 must not consume randomness or copies on 0->2.
  LoopbackTransport inner(3, perfect_links(3));
  FaultTransport transport(inner, plan_from("loss=0-1:1.0"));
  double now = 0.0;
  transport.set_time_source([&] { return now; });
  for (int k = 0; k < 50; ++k) transport.send(0, message(1));
  EXPECT_EQ(poll_count(transport, 1), 0u);   // always killed
  EXPECT_EQ(poll_count(transport, 2), 50u);  // never touched
  EXPECT_EQ(transport.fault_stats().lost, 50u);
}

}  // namespace
}  // namespace omnc::emu

#include "coding/generation.h"

#include <gtest/gtest.h>

#include <vector>

namespace omnc::coding {
namespace {

TEST(Generation, FromBytesZeroPads) {
  CodingParams params{4, 8};
  std::vector<std::uint8_t> data = {1, 2, 3, 4, 5};
  const Generation gen = Generation::from_bytes(7, params, data);
  EXPECT_EQ(gen.id(), 7u);
  EXPECT_EQ(gen.bytes().size(), 32u);
  EXPECT_EQ(gen.bytes()[0], 1);
  EXPECT_EQ(gen.bytes()[4], 5);
  for (std::size_t i = 5; i < 32; ++i) EXPECT_EQ(gen.bytes()[i], 0);
}

TEST(Generation, BlockAccessIsRowMajor) {
  CodingParams params{3, 4};
  std::vector<std::uint8_t> data(12);
  for (std::size_t i = 0; i < 12; ++i) data[i] = static_cast<std::uint8_t>(i);
  const Generation gen = Generation::from_bytes(0, params, data);
  EXPECT_EQ(gen.block(0)[0], 0);
  EXPECT_EQ(gen.block(1)[0], 4);
  EXPECT_EQ(gen.block(2)[3], 11);
}

TEST(Generation, SyntheticIsDeterministicPerSeedAndId) {
  CodingParams params{8, 64};
  const Generation a = Generation::synthetic(3, params, 42);
  const Generation b = Generation::synthetic(3, params, 42);
  const Generation c = Generation::synthetic(4, params, 42);
  const Generation d = Generation::synthetic(3, params, 43);
  EXPECT_TRUE(std::equal(a.bytes().begin(), a.bytes().end(), b.bytes().begin()));
  EXPECT_FALSE(std::equal(a.bytes().begin(), a.bytes().end(), c.bytes().begin()));
  EXPECT_FALSE(std::equal(a.bytes().begin(), a.bytes().end(), d.bytes().begin()));
}

TEST(Generation, GenerationBytes) {
  CodingParams params{40, 1024};
  EXPECT_EQ(params.generation_bytes(), 40u * 1024u);
}

}  // namespace
}  // namespace omnc::coding

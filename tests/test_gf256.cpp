#include "galois/gf256.h"

#include <gtest/gtest.h>

namespace omnc::gf {
namespace {

TEST(Gf256, AddIsXor) {
  EXPECT_EQ(add(0x53, 0xCA), 0x53 ^ 0xCA);
  EXPECT_EQ(add(0xFF, 0xFF), 0);
}

TEST(Gf256, MulMatchesSlowReference) {
  for (int a = 0; a < 256; ++a) {
    for (int b = 0; b < 256; ++b) {
      EXPECT_EQ(mul(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b)),
                mul_slow(static_cast<std::uint8_t>(a),
                         static_cast<std::uint8_t>(b)));
    }
  }
}

TEST(Gf256, KnownAesProducts) {
  // Classic AES examples over 0x11B.
  EXPECT_EQ(mul(0x57, 0x83), 0xC1);
  EXPECT_EQ(mul(0x57, 0x13), 0xFE);
  EXPECT_EQ(mul(0x02, 0x80), 0x1B);
}

TEST(Gf256, MultiplicationCommutative) {
  for (int a = 0; a < 256; a += 7) {
    for (int b = 0; b < 256; b += 5) {
      EXPECT_EQ(mul(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b)),
                mul(static_cast<std::uint8_t>(b), static_cast<std::uint8_t>(a)));
    }
  }
}

TEST(Gf256, MultiplicationAssociative) {
  for (int a = 1; a < 256; a += 17) {
    for (int b = 1; b < 256; b += 13) {
      for (int c = 1; c < 256; c += 11) {
        const auto ab = mul(static_cast<std::uint8_t>(a),
                            static_cast<std::uint8_t>(b));
        const auto bc = mul(static_cast<std::uint8_t>(b),
                            static_cast<std::uint8_t>(c));
        EXPECT_EQ(mul(ab, static_cast<std::uint8_t>(c)),
                  mul(static_cast<std::uint8_t>(a), bc));
      }
    }
  }
}

TEST(Gf256, DistributesOverAddition) {
  for (int a = 0; a < 256; a += 9) {
    for (int b = 0; b < 256; b += 7) {
      for (int c = 0; c < 256; c += 13) {
        const auto lhs = mul(static_cast<std::uint8_t>(a),
                             add(static_cast<std::uint8_t>(b),
                                 static_cast<std::uint8_t>(c)));
        const auto rhs = add(mul(static_cast<std::uint8_t>(a),
                                 static_cast<std::uint8_t>(b)),
                             mul(static_cast<std::uint8_t>(a),
                                 static_cast<std::uint8_t>(c)));
        EXPECT_EQ(lhs, rhs);
      }
    }
  }
}

TEST(Gf256, MultiplicativeIdentityAndZero) {
  for (int a = 0; a < 256; ++a) {
    EXPECT_EQ(mul(static_cast<std::uint8_t>(a), 1), a);
    EXPECT_EQ(mul(static_cast<std::uint8_t>(a), 0), 0);
  }
}

TEST(Gf256, InverseIsTwoSided) {
  for (int a = 1; a < 256; ++a) {
    const auto ia = inv(static_cast<std::uint8_t>(a));
    EXPECT_EQ(mul(static_cast<std::uint8_t>(a), ia), 1) << "a=" << a;
    EXPECT_EQ(mul(ia, static_cast<std::uint8_t>(a)), 1) << "a=" << a;
  }
  EXPECT_EQ(inv(0), 0);  // total function convention
}

TEST(Gf256, DivisionInvertsMultiplication) {
  for (int a = 0; a < 256; a += 3) {
    for (int b = 1; b < 256; b += 5) {
      const auto product = mul(static_cast<std::uint8_t>(a),
                               static_cast<std::uint8_t>(b));
      EXPECT_EQ(div(product, static_cast<std::uint8_t>(b)), a);
    }
  }
}

TEST(Gf256, ExpLogRoundTrip) {
  for (int a = 1; a < 256; ++a) {
    EXPECT_EQ(exp_g(log_g(static_cast<std::uint8_t>(a))), a);
  }
}

TEST(Gf256, GeneratorHasFullOrder) {
  // 3 must generate all 255 nonzero elements.
  std::uint8_t x = 1;
  for (int i = 1; i < 255; ++i) {
    x = mul(x, 3);
    EXPECT_NE(x, 1) << "premature cycle at " << i;
  }
  EXPECT_EQ(mul(x, 3), 1);
}

TEST(Gf256, MulRowMatchesScalar) {
  for (int c = 0; c < 256; c += 11) {
    const std::uint8_t* row = mul_row(static_cast<std::uint8_t>(c));
    for (int a = 0; a < 256; ++a) {
      EXPECT_EQ(row[a],
                mul(static_cast<std::uint8_t>(c), static_cast<std::uint8_t>(a)));
    }
  }
}

TEST(Gf256, XtimeMatchesMulByTwo) {
  for (int a = 0; a < 256; ++a) {
    EXPECT_EQ(xtime(static_cast<std::uint8_t>(a)),
              mul(static_cast<std::uint8_t>(a), 2));
  }
}

}  // namespace
}  // namespace omnc::gf

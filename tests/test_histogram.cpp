// Property tests for the log-bucketed latency histogram (obs/histogram.h):
// bucket-boundary exactness (index -> floor -> index is the identity), merge
// associativity/commutativity on integer counts, and an exact
// serialize -> record -> reparse round trip through the JSONL trace layer.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "obs/histogram.h"
#include "obs/trace.h"
#include "obs/trace_reader.h"

namespace omnc::obs {
namespace {

TEST(Histogram, StartsEmpty) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.quantile(50.0), 0.0);
}

TEST(Histogram, BucketFloorRoundTripsForEveryInteriorBucket) {
  // Bucket edges are exact dyadic rationals, so the lower edge of every
  // interior bucket must map back to that same bucket.  This is what makes
  // serialized histograms reparse bit-identically.
  for (int index = 1; index + 1 < Histogram::kBucketCount; ++index) {
    const double floor = Histogram::bucket_floor(index);
    EXPECT_EQ(Histogram::bucket_index(floor), index)
        << "bucket " << index << " floor " << floor;
  }
}

TEST(Histogram, BucketEdgesAreMonotone) {
  double previous = Histogram::bucket_floor(1);
  for (int index = 2; index + 1 < Histogram::kBucketCount; ++index) {
    const double floor = Histogram::bucket_floor(index);
    EXPECT_GT(floor, previous) << "bucket " << index;
    previous = floor;
  }
}

TEST(Histogram, ValuesJustBelowAnEdgeStayInTheLowerBucket) {
  for (int index : {64, 512, 1024, 1999}) {
    const double floor = Histogram::bucket_floor(index);
    const double below = std::nextafter(floor, 0.0);
    EXPECT_EQ(Histogram::bucket_index(below), index - 1)
        << "value just below the edge of bucket " << index;
  }
}

TEST(Histogram, UnderflowAndOverflowLandInOutermostBuckets) {
  Histogram h;
  h.record(1e-300);  // far below 2^(kMinExp-1)
  h.record(1e300);   // far above 2^kMaxExp
  h.record(0.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 1e300);
  // Exact extremes are preserved even though the buckets saturate.
  EXPECT_EQ(h.quantile(0.0), 0.0);
  EXPECT_EQ(h.quantile(100.0), 1e300);
}

/// Dyadic rationals sum exactly in double, so merged `sum` fields compare
/// with operator== and associativity is testable as full equality.
Histogram dyadic(std::initializer_list<double> values) {
  Histogram h;
  for (double v : values) h.record(v);
  return h;
}

TEST(Histogram, MergeIsAssociativeAndCommutative) {
  const Histogram a = dyadic({0.5, 0.25, 8.0, 0.125});
  const Histogram b = dyadic({1.5, 1.5, 0.75});
  const Histogram c = dyadic({2.0, 1024.0, 0.0078125});

  Histogram ab = a;
  ab.merge(b);
  Histogram ab_c = ab;
  ab_c.merge(c);

  Histogram bc = b;
  bc.merge(c);
  Histogram a_bc = a;
  a_bc.merge(bc);

  EXPECT_EQ(ab_c, a_bc) << "merge is not associative";

  Histogram ba = b;
  ba.merge(a);
  EXPECT_EQ(ab, ba) << "merge is not commutative";

  EXPECT_EQ(ab_c.count(), a.count() + b.count() + c.count());
  EXPECT_EQ(ab_c.min(), 0.0078125);
  EXPECT_EQ(ab_c.max(), 1024.0);
}

TEST(Histogram, MergeWithEmptyIsIdentity) {
  const Histogram a = dyadic({0.5, 4.0});
  Histogram merged = a;
  merged.merge(Histogram{});
  EXPECT_EQ(merged, a);

  Histogram other;
  other.merge(a);
  EXPECT_EQ(other, a);
}

TEST(Histogram, QuantileReturnsBucketFloorsAndExactExtremes) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.record(static_cast<double>(i) / 1000.0);
  EXPECT_EQ(h.quantile(0.0), 0.001);
  EXPECT_EQ(h.quantile(100.0), 0.1);
  // Interior quantiles are bucket lower edges: deterministic and within one
  // relative bucket width (1/kSubBuckets) below the true value.
  const double p50 = h.quantile(50.0);
  EXPECT_EQ(Histogram::bucket_floor(Histogram::bucket_index(p50)), p50);
  EXPECT_LE(p50, 0.050);
  EXPECT_GT(p50, 0.050 * (1.0 - 2.0 / Histogram::kSubBuckets));
}

TEST(Histogram, RecordNCountsInBulk) {
  Histogram bulk;
  bulk.record_n(0.25, 1000);
  Histogram loop;
  for (int i = 0; i < 1000; ++i) loop.record(0.25);
  EXPECT_EQ(bulk, loop);
}

TEST(Histogram, SerializeRoundTripsExactlyThroughTheTrace) {
  Histogram original;
  // A spread across decades, including awkward doubles the %.17g encoding
  // must survive exactly, plus under/overflow.
  for (double v : {1e-9, 3.14159e-3, 0.1, 0.1, 0.7, 42.0, 1e7, 1e300, 0.0}) {
    original.record(v);
  }
  original.record_n(2.5e-4, 12345);

  const std::string path =
      ::testing::TempDir() + "histogram_roundtrip.jsonl";
  {
    TraceRecorder recorder(path, "test_histogram", "unit", 1);
    ASSERT_TRUE(recorder.ok());
    RunContext context;
    context.protocol = "unit";
    const int run = recorder.begin_run(context, {});
    recorder.record_histogram(run, "round_trip", original);
  }

  Trace trace;
  std::string error;
  ASSERT_TRUE(read_trace(path, &trace, &error)) << error;
  ASSERT_EQ(trace.runs.size(), 1u);
  ASSERT_EQ(trace.runs[0].histograms.size(), 1u);
  EXPECT_EQ(trace.runs[0].histograms[0].first, "round_trip");
  const Histogram& reparsed = trace.runs[0].histograms[0].second;
  EXPECT_EQ(reparsed, original)
      << "serialize -> parse must be bit-identical";
  EXPECT_EQ(reparsed.to_json(), original.to_json());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace omnc::obs

// Full-pipeline integration tests: workload generation -> node selection ->
// optimization -> all four protocols on the simulated testbed.
#include <gtest/gtest.h>

#include "experiments/runner.h"
#include "experiments/workload.h"
#include "opt/sunicast.h"

namespace omnc::experiments {
namespace {

RunConfig fast_run_config() {
  RunConfig config;
  config.protocol.coding.generation_blocks = 16;
  config.protocol.coding.block_bytes = 128;
  config.protocol.mac.capacity_bytes_per_s = 2e4;
  config.protocol.mac.slot_bytes = 12 + 16 + 128;
  config.protocol.cbr_bytes_per_s = 1e4;
  config.protocol.max_sim_seconds = 60.0;
  config.solve_lp = true;
  return config;
}

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    WorkloadConfig wc;
    wc.deployment.nodes = 200;
    wc.sessions = 4;
    wc.seed = 2024;
    sessions_ = new std::vector<SessionSpec>(generate_workload(wc));
    results_ = new std::vector<ComparisonResult>(
        run_all(*sessions_, fast_run_config()));
  }
  static void TearDownTestSuite() {
    delete sessions_;
    delete results_;
    sessions_ = nullptr;
    results_ = nullptr;
  }

  static std::vector<SessionSpec>* sessions_;
  static std::vector<ComparisonResult>* results_;
};

std::vector<SessionSpec>* IntegrationTest::sessions_ = nullptr;
std::vector<ComparisonResult>* IntegrationTest::results_ = nullptr;

TEST_F(IntegrationTest, AllProtocolsDeliverSomething) {
  for (const auto& r : *results_) {
    EXPECT_GT(r.etx.throughput_bytes_per_s, 0.0);
    EXPECT_GT(r.omnc.throughput_per_generation, 0.0);
    EXPECT_GT(r.more.throughput_per_generation, 0.0);
    // oldMORE can legitimately deliver nothing on hostile sessions, but
    // should not crash; its metrics must simply be populated.
    EXPECT_GE(r.oldmore.throughput_per_generation, 0.0);
  }
}

TEST_F(IntegrationTest, EmulatedThroughputBelowLpOptimum) {
  // The paper: "the actual emulated throughput of OMNC tends to be lower
  // than the optimized throughput computed by the sUnicast framework".
  for (const auto& r : *results_) {
    ASSERT_GT(r.lp_gamma, 0.0);
    EXPECT_LT(r.omnc.throughput_per_generation, r.lp_gamma * 1.05);
  }
}

TEST_F(IntegrationTest, OmncQueuesSmallerThanCreditProtocols) {
  double omnc_total = 0.0;
  double more_total = 0.0;
  for (const auto& r : *results_) {
    omnc_total += r.omnc.mean_queue;
    more_total += r.more.mean_queue;
  }
  EXPECT_LT(omnc_total, more_total);
}

TEST_F(IntegrationTest, GainsArePositiveWhereEtxDelivered) {
  for (const auto& r : *results_) {
    if (r.etx.throughput_bytes_per_s > 0.0) {
      EXPECT_GT(r.gain_omnc, 0.0);
      EXPECT_GT(r.gain_more, 0.0);
    }
  }
}

TEST_F(IntegrationTest, RateControlConvergedEverywhere) {
  for (const auto& r : *results_) {
    EXPECT_TRUE(r.omnc.rc_converged);
    EXPECT_GT(r.omnc.rc_iterations, 0);
    EXPECT_GT(r.omnc.rc_messages, 0u);
  }
}

TEST_F(IntegrationTest, SpecSummaryPreserved) {
  ASSERT_EQ(results_->size(), sessions_->size());
  for (std::size_t i = 0; i < results_->size(); ++i) {
    EXPECT_EQ((*results_)[i].spec_summary.src, (*sessions_)[i].src);
    EXPECT_EQ((*results_)[i].spec_summary.dst, (*sessions_)[i].dst);
    EXPECT_EQ((*results_)[i].spec_summary.topology, nullptr);
  }
}

TEST_F(IntegrationTest, ParallelRunnerMatchesSerial) {
  // Same sessions through a thread pool must give identical results
  // (per-session RNG streams are independent of scheduling).
  ThreadPool pool(2);
  const auto parallel = run_all(*sessions_, fast_run_config(), &pool);
  ASSERT_EQ(parallel.size(), results_->size());
  for (std::size_t i = 0; i < parallel.size(); ++i) {
    EXPECT_DOUBLE_EQ(parallel[i].omnc.throughput_per_generation,
                     (*results_)[i].omnc.throughput_per_generation);
    EXPECT_DOUBLE_EQ(parallel[i].etx.throughput_bytes_per_s,
                     (*results_)[i].etx.throughput_bytes_per_s);
  }
}

}  // namespace
}  // namespace omnc::experiments

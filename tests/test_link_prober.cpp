#include "routing/link_prober.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace omnc::routing {
namespace {

TEST(LinkProber, EstimatesMatchTruePropabilitiesWithinSamplingError) {
  std::vector<std::vector<double>> p(3, std::vector<double>(3, 0.0));
  p[0][1] = 0.7;
  p[1][0] = 0.4;
  p[1][2] = 0.9;
  p[2][1] = 0.6;
  const net::Topology topo = net::Topology::from_link_matrix(p);

  ProbeConfig config;
  config.probes_per_node = 600;
  config.mac.capacity_bytes_per_s = 1e5;
  config.mac.slot_bytes = 100;
  config.mac.fading.enabled = false;  // estimate the stationary mean
  const ProbeReport report =
      measure_link_qualities(topo, {0, 1, 2}, config, Rng(3));

  ASSERT_EQ(report.sent.size(), 3u);
  for (int sent : report.sent) EXPECT_EQ(sent, 600);
  EXPECT_NEAR(report.estimate[0][1], 0.7, 0.06);
  EXPECT_NEAR(report.estimate[1][0], 0.4, 0.06);
  EXPECT_NEAR(report.estimate[1][2], 0.9, 0.06);
  EXPECT_NEAR(report.estimate[2][1], 0.6, 0.06);
  EXPECT_DOUBLE_EQ(report.estimate[0][2], 0.0);  // no link
  EXPECT_GT(report.duration_s, 0.0);
}

TEST(LinkProber, FadingAveragesOutOverLongCampaigns) {
  std::vector<std::vector<double>> p(2, std::vector<double>(2, 0.0));
  p[0][1] = 0.5;
  p[1][0] = 0.5;
  const net::Topology topo = net::Topology::from_link_matrix(p);
  ProbeConfig config;
  config.probes_per_node = 4000;
  config.mac.capacity_bytes_per_s = 1e5;
  config.mac.slot_bytes = 100;
  config.mac.fading.enabled = true;
  const ProbeReport report =
      measure_link_qualities(topo, {0, 1}, config, Rng(9));
  EXPECT_NEAR(report.estimate[0][1], 0.5, 0.08);
}

TEST(LinkProber, TopologyFromProbesPreservesStructure) {
  std::vector<std::vector<double>> p(3, std::vector<double>(3, 0.0));
  p[0][1] = 0.8;
  p[1][0] = 0.8;
  p[1][2] = 0.5;
  p[2][1] = 0.5;
  const net::Topology topo = net::Topology::from_link_matrix(p);
  ProbeConfig config;
  config.probes_per_node = 400;
  config.mac.capacity_bytes_per_s = 1e5;
  config.mac.slot_bytes = 100;
  config.mac.fading.enabled = false;
  const ProbeReport report =
      measure_link_qualities(topo, {0, 1, 2}, config, Rng(5));
  const net::Topology measured = topology_from_probes({0, 1, 2}, report, 3);
  EXPECT_EQ(measured.node_count(), 3);
  EXPECT_GT(measured.prob(0, 1), 0.6);
  EXPECT_DOUBLE_EQ(measured.prob(0, 2), 0.0);
  EXPECT_NEAR(measured.prob(1, 2), 0.5, 0.1);
}

}  // namespace
}  // namespace omnc::routing

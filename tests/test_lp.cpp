#include "lp/simplex.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace omnc::lp {
namespace {

TEST(Simplex, BasicMaximization) {
  // max 3x + 2y  s.t. x + y <= 4, x <= 2  ->  x = 2, y = 2, obj = 10.
  Problem p;
  p.objective = {3.0, 2.0};
  p.add_le({1.0, 1.0}, 4.0);
  p.add_le({1.0, 0.0}, 2.0);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.objective, 10.0, 1e-9);
  EXPECT_NEAR(s.x[0], 2.0, 1e-9);
  EXPECT_NEAR(s.x[1], 2.0, 1e-9);
}

TEST(Simplex, DetectsInfeasible) {
  Problem p;
  p.objective = {1.0};
  p.add_le({1.0}, 1.0);
  p.add_ge({1.0}, 2.0);
  EXPECT_EQ(solve(p).status, Status::kInfeasible);
}

TEST(Simplex, DetectsUnbounded) {
  Problem p;
  p.objective = {1.0};
  p.add_ge({1.0}, 1.0);
  EXPECT_EQ(solve(p).status, Status::kUnbounded);
}

TEST(Simplex, EqualityConstraints) {
  // max x + y  s.t. x + y = 3, x <= 1  ->  obj 3 with x <= 1.
  Problem p;
  p.objective = {1.0, 1.0};
  p.add_eq({1.0, 1.0}, 3.0);
  p.add_le({1.0, 0.0}, 1.0);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.objective, 3.0, 1e-9);
  EXPECT_LE(s.x[0], 1.0 + 1e-9);
}

TEST(Simplex, NegativeRhsNormalized) {
  // x - y >= -2  with  max -x - y is equivalent to x - y + 2 >= 0...
  // Use: max y  s.t. -y >= -5  ->  y = 5.
  Problem p;
  p.objective = {1.0};
  p.add_ge({-1.0}, -5.0);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.objective, 5.0, 1e-9);
}

TEST(Simplex, MinimizationViaNegatedObjective) {
  // min x + 2y s.t. x + y >= 3, y >= 1  == max -(x + 2y).
  Problem p;
  p.objective = {-1.0, -2.0};
  p.add_ge({1.0, 1.0}, 3.0);
  p.add_ge({0.0, 1.0}, 1.0);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.objective, -4.0, 1e-9);  // x = 2, y = 1
  EXPECT_NEAR(s.x[0], 2.0, 1e-9);
  EXPECT_NEAR(s.x[1], 1.0, 1e-9);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Multiple redundant constraints through the optimum (classic degeneracy).
  Problem p;
  p.objective = {1.0, 1.0};
  p.add_le({1.0, 0.0}, 1.0);
  p.add_le({0.0, 1.0}, 1.0);
  p.add_le({1.0, 1.0}, 2.0);
  p.add_le({2.0, 2.0}, 4.0);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.objective, 2.0, 1e-9);
}

TEST(Simplex, ZeroObjectiveIsFeasibilityCheck) {
  Problem p;
  p.objective = {0.0, 0.0};
  p.add_eq({1.0, 1.0}, 2.0);
  p.add_le({1.0, 0.0}, 1.5);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.objective, 0.0, 1e-9);
  EXPECT_NEAR(s.x[0] + s.x[1], 2.0, 1e-9);
}

TEST(Simplex, SolutionSatisfiesAllConstraints) {
  // Random LPs: verify feasibility of the returned solution.
  Rng rng(3);
  for (int trial = 0; trial < 25; ++trial) {
    const int n = rng.uniform_int(2, 8);
    const int m = rng.uniform_int(2, 10);
    Problem p;
    p.objective.resize(static_cast<std::size_t>(n));
    for (auto& c : p.objective) c = rng.uniform(-2.0, 2.0);
    for (int r = 0; r < m; ++r) {
      std::vector<double> row(static_cast<std::size_t>(n));
      for (auto& a : row) a = rng.uniform(0.0, 2.0);
      p.add_le(std::move(row), rng.uniform(1.0, 10.0));
    }
    const Solution s = solve(p);
    // All-le with nonnegative rhs: always feasible and bounded... bounded
    // only if objective positive directions are covered; rows with zero
    // coefficients could leave a variable unbounded.
    if (s.status != Status::kOptimal) continue;
    for (const auto& row : p.constraints) {
      double lhs = 0.0;
      for (int c = 0; c < n; ++c) {
        lhs += row.coefficients[static_cast<std::size_t>(c)] *
               s.x[static_cast<std::size_t>(c)];
      }
      EXPECT_LE(lhs, row.rhs + 1e-6);
    }
    for (double x : s.x) EXPECT_GE(x, -1e-9);
  }
}

TEST(Simplex, TransportationProblem) {
  // Two sources (supply 10, 20), two sinks (demand 15, 15), costs
  // c = [[1,3],[2,1]]; min cost = 15*1 + ... optimum: x11=10, x21=5, x22=15
  // cost = 10 + 10 + 15 = 35.
  Problem p;
  p.objective = {-1.0, -3.0, -2.0, -1.0};  // maximize negative cost
  p.add_le({1.0, 1.0, 0.0, 0.0}, 10.0);   // supply 1
  p.add_le({0.0, 0.0, 1.0, 1.0}, 20.0);   // supply 2
  p.add_eq({1.0, 0.0, 1.0, 0.0}, 15.0);   // demand 1
  p.add_eq({0.0, 1.0, 0.0, 1.0}, 15.0);   // demand 2
  const Solution s = solve(p);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.objective, -35.0, 1e-9);
}

}  // namespace
}  // namespace omnc::lp

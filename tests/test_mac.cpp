#include "net/mac.h"

#include <gtest/gtest.h>

#include <memory>

#include "common/rng.h"
#include "net/topology.h"
#include "sim/simulator.h"

namespace omnc::net {
namespace {

std::shared_ptr<const std::vector<std::uint8_t>> payload(std::size_t n = 4) {
  return std::make_shared<const std::vector<std::uint8_t>>(
      std::vector<std::uint8_t>(n, 0xAB));
}

Topology line_topology(double p = 1.0, int nodes = 3) {
  std::vector<std::vector<double>> m(
      static_cast<std::size_t>(nodes),
      std::vector<double>(static_cast<std::size_t>(nodes), 0.0));
  for (int i = 0; i + 1 < nodes; ++i) {
    m[static_cast<std::size_t>(i)][static_cast<std::size_t>(i + 1)] = p;
    m[static_cast<std::size_t>(i + 1)][static_cast<std::size_t>(i)] = p;
  }
  return Topology::from_link_matrix(m);
}

MacConfig ideal_config() {
  MacConfig config;
  config.capacity_bytes_per_s = 1000.0;
  config.slot_bytes = 100;  // slot = 0.1 s
  config.mode = MacMode::kIdealScheduling;
  config.fading.enabled = false;
  config.unicast_slot_cost = 1;
  return config;
}

TEST(SlottedMac, SlotDuration) {
  sim::Simulator sim;
  const Topology topo = line_topology();
  SlottedMac mac(sim, topo, {0, 1, 2}, ideal_config(), Rng(1));
  EXPECT_DOUBLE_EQ(mac.slot_duration(), 0.1);
}

TEST(SlottedMac, SingleTransmitterUsesEverySlot) {
  sim::Simulator sim;
  const Topology topo = line_topology();
  SlottedMac mac(sim, topo, {0, 1, 2}, ideal_config(), Rng(1));
  int received = 0;
  mac.set_receive_handler([&](NodeId rx, const Frame&) {
    if (rx == 1) ++received;
  });
  mac.add_slot_hook([&](sim::Time) {
    if (mac.queue_size(0) == 0) {
      Frame frame;
      frame.from = 0;
      frame.to = kBroadcast;
      frame.bytes = payload();
      mac.enqueue(std::move(frame));
    }
  });
  mac.start();
  sim.run_until(10.0);  // 100 slots
  mac.stop();
  // Perfect link, no competition: node 1 receives ~every slot (first slot
  // had no frame queued yet).
  EXPECT_GE(received, 97);
  EXPECT_LE(received, 100);
}

TEST(SlottedMac, AdjacentTransmittersShareChannel) {
  sim::Simulator sim;
  const Topology topo = line_topology();
  SlottedMac mac(sim, topo, {0, 1, 2}, ideal_config(), Rng(2));
  mac.add_slot_hook([&](sim::Time) {
    for (NodeId n : {0, 1}) {
      if (mac.queue_size(n) < 2) {
        Frame frame;
        frame.from = n;
        frame.to = kBroadcast;
        frame.bytes = payload();
        mac.enqueue(frame);
      }
    }
  });
  mac.start();
  sim.run_until(100.0);  // 1000 slots
  mac.stop();
  // 0 and 1 are linked: exactly one of them transmits per slot.
  EXPECT_NEAR(static_cast<double>(mac.total_transmissions()), 1000.0, 10.0);
  EXPECT_NEAR(static_cast<double>(mac.transmissions(0)), 500.0, 100.0);
  EXPECT_NEAR(static_cast<double>(mac.transmissions(1)), 500.0, 100.0);
}

TEST(SlottedMac, LossRateMatchesLinkProbability) {
  sim::Simulator sim;
  const Topology topo = line_topology(0.4);
  SlottedMac mac(sim, topo, {0, 1, 2}, ideal_config(), Rng(3));
  int received = 0;
  mac.set_receive_handler([&](NodeId rx, const Frame&) {
    if (rx == 1) ++received;
  });
  mac.add_slot_hook([&](sim::Time) {
    if (mac.queue_size(0) == 0) {
      Frame frame;
      frame.from = 0;
      frame.to = kBroadcast;
      frame.bytes = payload();
      mac.enqueue(frame);
    }
  });
  mac.start();
  sim.run_until(500.0);  // 5000 slots
  mac.stop();
  const double rate =
      static_cast<double>(received) / static_cast<double>(mac.transmissions(0));
  EXPECT_NEAR(rate, 0.4, 0.03);
}

TEST(SlottedMac, FadingPreservesMeanReception) {
  sim::Simulator sim;
  const Topology topo = line_topology(0.5);
  MacConfig config = ideal_config();
  config.fading.enabled = true;
  SlottedMac mac(sim, topo, {0, 1, 2}, config, Rng(4));
  int received = 0;
  mac.set_receive_handler([&](NodeId rx, const Frame&) {
    if (rx == 1) ++received;
  });
  mac.add_slot_hook([&](sim::Time) {
    if (mac.queue_size(0) == 0) {
      Frame frame;
      frame.from = 0;
      frame.to = kBroadcast;
      frame.bytes = payload();
      mac.enqueue(frame);
    }
  });
  mac.start();
  sim.run_until(6000.0);  // 60000 slots: enough fade cycles to average out
  mac.stop();
  const double rate =
      static_cast<double>(received) / static_cast<double>(mac.transmissions(0));
  EXPECT_NEAR(rate, 0.5, 0.04);
}

TEST(SlottedMac, ReliableUnicastDeliversDespiteLoss) {
  sim::Simulator sim;
  const Topology topo = line_topology(0.5);
  MacConfig config = ideal_config();
  config.unicast_retry_limit = 0;  // retry forever
  SlottedMac mac(sim, topo, {0, 1, 2}, config, Rng(5));
  int received = 0;
  mac.set_receive_handler([&](NodeId rx, const Frame&) {
    if (rx == 1) ++received;
  });
  for (int i = 0; i < 20; ++i) {
    Frame frame;
    frame.from = 0;
    frame.to = 1;
    frame.reliable = true;
    frame.bytes = payload();
    ASSERT_TRUE(mac.enqueue(std::move(frame)));
  }
  mac.start();
  sim.run_until(50.0);
  mac.stop();
  EXPECT_EQ(received, 20);
  // ~2 attempts per delivery at p = 0.5.
  EXPECT_GT(mac.transmissions(0), 28u);
  EXPECT_EQ(mac.total_retry_failures(), 0u);
}

TEST(SlottedMac, RetryLimitDropsFrames) {
  sim::Simulator sim;
  const Topology topo = line_topology(0.01);  // nearly dead link
  MacConfig config = ideal_config();
  config.unicast_retry_limit = 3;
  SlottedMac mac(sim, topo, {0, 1, 2}, config, Rng(6));
  int received = 0;
  mac.set_receive_handler([&](NodeId rx, const Frame&) {
    if (rx == 1) ++received;
  });
  for (int i = 0; i < 10; ++i) {
    Frame frame;
    frame.from = 0;
    frame.to = 1;
    frame.reliable = true;
    frame.bytes = payload();
    mac.enqueue(std::move(frame));
  }
  mac.start();
  sim.run_until(20.0);
  mac.stop();
  EXPECT_EQ(mac.queue_size(0), 0u);  // everything either delivered or dropped
  EXPECT_GT(mac.total_retry_failures(), 5u);
  EXPECT_LE(mac.transmissions(0), 30u);  // at most 3 attempts each
}

TEST(SlottedMac, UnicastSlotCostOccupiesAirtime) {
  sim::Simulator sim;
  const Topology topo = line_topology(1.0);
  MacConfig config = ideal_config();
  config.unicast_slot_cost = 2;
  SlottedMac mac(sim, topo, {0, 1, 2}, config, Rng(7));
  mac.add_slot_hook([&](sim::Time) {
    if (mac.queue_size(0) < 2) {
      Frame frame;
      frame.from = 0;
      frame.to = 1;
      frame.reliable = true;
      frame.bytes = payload();
      mac.enqueue(frame);
    }
  });
  mac.start();
  sim.run_until(100.0);  // 1000 slots
  mac.stop();
  // Each attempt costs two slots: at most ~500 transmissions.
  EXPECT_LE(mac.transmissions(0), 510u);
  EXPECT_GE(mac.transmissions(0), 450u);
}

TEST(SlottedMac, HiddenTerminalCollisionKillsReception) {
  // 0 and 2 cannot hear each other but both cover node 1.
  sim::Simulator sim;
  const Topology topo = line_topology(1.0);
  SlottedMac mac(sim, topo, {0, 1, 2}, ideal_config(), Rng(8));
  int received = 0;
  mac.set_receive_handler([&](NodeId rx, const Frame&) {
    if (rx == 1) ++received;
  });
  mac.add_slot_hook([&](sim::Time) {
    for (NodeId n : {0, 2}) {
      if (mac.queue_size(n) == 0) {
        Frame frame;
        frame.from = n;
        frame.to = kBroadcast;
        frame.bytes = payload();
        mac.enqueue(frame);
      }
    }
  });
  mac.start();
  sim.run_until(50.0);
  mac.stop();
  // Both backlogged and mutually inaudible: they transmit every slot and
  // node 1 is permanently collided.
  EXPECT_GT(mac.total_transmissions(), 900u);
  EXPECT_EQ(received, 0);
}

TEST(SlottedMac, ProtectReceiversSerializesHiddenTerminals) {
  sim::Simulator sim;
  const Topology topo = line_topology(1.0);
  MacConfig config = ideal_config();
  config.protect_receivers = true;
  SlottedMac mac(sim, topo, {0, 1, 2}, config, Rng(9));
  int received = 0;
  mac.set_receive_handler([&](NodeId rx, const Frame&) {
    if (rx == 1) ++received;
  });
  mac.add_slot_hook([&](sim::Time) {
    for (NodeId n : {0, 2}) {
      if (mac.queue_size(n) == 0) {
        Frame frame;
        frame.from = n;
        frame.to = kBroadcast;
        frame.bytes = payload();
        mac.enqueue(frame);
      }
    }
  });
  mac.start();
  sim.run_until(50.0);
  mac.stop();
  // With receiver protection 0 and 2 alternate; node 1 hears everything.
  EXPECT_GT(received, 450);
}

TEST(SlottedMac, QueueDropTail) {
  sim::Simulator sim;
  const Topology topo = line_topology(1.0);
  MacConfig config = ideal_config();
  config.max_queue = 5;
  SlottedMac mac(sim, topo, {0, 1, 2}, config, Rng(10));
  for (int i = 0; i < 10; ++i) {
    Frame frame;
    frame.from = 0;
    frame.to = kBroadcast;
    frame.bytes = payload();
    mac.enqueue(std::move(frame));
  }
  EXPECT_EQ(mac.queue_size(0), 5u);
  EXPECT_EQ(mac.total_drops(), 5u);
}

TEST(SlottedMac, PurgeQueueByPredicate) {
  sim::Simulator sim;
  const Topology topo = line_topology(1.0);
  SlottedMac mac(sim, topo, {0, 1, 2}, ideal_config(), Rng(11));
  for (int i = 0; i < 6; ++i) {
    Frame frame;
    frame.from = 0;
    frame.to = kBroadcast;
    frame.bytes = std::make_shared<const std::vector<std::uint8_t>>(
        std::vector<std::uint8_t>{static_cast<std::uint8_t>(i)});
    mac.enqueue(std::move(frame));
  }
  mac.purge_queue(0, [](const Frame& f) { return (*f.bytes)[0] % 2 == 0; });
  EXPECT_EQ(mac.queue_size(0), 3u);
}

TEST(SlottedMac, QueueTimeAverageTracksBacklog) {
  sim::Simulator sim;
  const Topology topo = line_topology(1.0);
  SlottedMac mac(sim, topo, {0, 1, 2}, ideal_config(), Rng(12));
  // Enqueue 10 frames at once; they drain one per slot, so the time-averaged
  // queue over the drain period is ~(9+8+...+0)/10 = 4.5.
  for (int i = 0; i < 10; ++i) {
    Frame frame;
    frame.from = 0;
    frame.to = kBroadcast;
    frame.bytes = payload();
    mac.enqueue(std::move(frame));
  }
  mac.start();
  sim.run_until(1.05);  // ~10 slots
  mac.stop();
  EXPECT_NEAR(mac.queue_time_average(0), 4.5, 1.0);
}

TEST(SlottedMac, CsmaModeStillDelivers) {
  sim::Simulator sim;
  const Topology topo = line_topology(0.9);
  MacConfig config = ideal_config();
  config.mode = MacMode::kCsma;
  SlottedMac mac(sim, topo, {0, 1, 2}, config, Rng(13));
  int received = 0;
  mac.set_receive_handler([&](NodeId rx, const Frame&) {
    if (rx == 1) ++received;
  });
  mac.add_slot_hook([&](sim::Time) {
    if (mac.queue_size(0) == 0) {
      Frame frame;
      frame.from = 0;
      frame.to = kBroadcast;
      frame.bytes = payload();
      mac.enqueue(frame);
    }
  });
  mac.start();
  sim.run_until(100.0);
  mac.stop();
  EXPECT_GT(received, 500);  // single contender attempts every slot
}

}  // namespace
}  // namespace omnc::net

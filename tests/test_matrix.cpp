#include "galois/matrix.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "galois/gf256.h"

namespace omnc::gf {
namespace {

TEST(Matrix, IdentityMultiplication) {
  Rng rng(1);
  const Matrix m = Matrix::random(8, 8, rng);
  const Matrix id = Matrix::identity(8);
  EXPECT_EQ(m.mul(id), m);
  EXPECT_EQ(id.mul(m), m);
}

TEST(Matrix, MultiplicationMatchesScalarDefinition) {
  Rng rng(2);
  const Matrix a = Matrix::random(3, 4, rng);
  const Matrix b = Matrix::random(4, 5, rng);
  const Matrix c = a.mul(b);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t col = 0; col < 5; ++col) {
      std::uint8_t expected = 0;
      for (std::size_t k = 0; k < 4; ++k) {
        expected = add(expected, mul(a.at(r, k), b.at(k, col)));
      }
      EXPECT_EQ(c.at(r, col), expected);
    }
  }
}

TEST(Matrix, MultiplicationAssociative) {
  Rng rng(3);
  const Matrix a = Matrix::random(4, 6, rng);
  const Matrix b = Matrix::random(6, 5, rng);
  const Matrix c = Matrix::random(5, 3, rng);
  EXPECT_EQ(a.mul(b).mul(c), a.mul(b.mul(c)));
}

TEST(Matrix, RankOfIdentity) {
  EXPECT_EQ(Matrix::identity(10).rank(), 10u);
}

TEST(Matrix, RankOfZeroMatrix) {
  EXPECT_EQ(Matrix(5, 5).rank(), 0u);
}

TEST(Matrix, RankDropsWithDuplicateRow) {
  Rng rng(4);
  Matrix m = Matrix::random(4, 6, rng);
  // Make row 3 = row 0 scaled.
  for (std::size_t c = 0; c < 6; ++c) m.at(3, c) = mul(m.at(0, c), 0x17);
  EXPECT_LE(m.rank(), 3u);
}

TEST(Matrix, RandomSquareMatricesAreUsuallyFullRank) {
  Rng rng(5);
  int full = 0;
  for (int trial = 0; trial < 50; ++trial) {
    if (Matrix::random(16, 16, rng).rank() == 16) ++full;
  }
  // P(singular) ~ 1/255 per trial; 50 trials should almost all be full rank.
  EXPECT_GE(full, 47);
}

TEST(Matrix, RrefIsIdempotent) {
  Rng rng(6);
  Matrix m = Matrix::random(5, 8, rng);
  m.reduce_to_rref();
  Matrix again = m;
  const std::size_t rank1 = again.rank();
  again.reduce_to_rref();
  EXPECT_EQ(again, m);
  EXPECT_EQ(rank1, m.rank());
}

TEST(Matrix, RrefPivotStructure) {
  Rng rng(7);
  Matrix m = Matrix::random(6, 6, rng);
  const std::size_t rank = m.reduce_to_rref();
  ASSERT_EQ(rank, 6u);  // random square: full rank w.h.p.
  // Full-rank square RREF is the identity.
  EXPECT_EQ(m, Matrix::identity(6));
}

TEST(Matrix, InverseRoundTrip) {
  Rng rng(8);
  for (int trial = 0; trial < 10; ++trial) {
    Matrix m = Matrix::random(12, 12, rng);
    Matrix inverse;
    if (!m.invert(&inverse)) continue;  // rare singular draw
    EXPECT_EQ(m.mul(inverse), Matrix::identity(12));
    EXPECT_EQ(inverse.mul(m), Matrix::identity(12));
  }
}

TEST(Matrix, SingularMatrixInvertFails) {
  Matrix m(3, 3);  // zero matrix
  Matrix inverse;
  EXPECT_FALSE(m.invert(&inverse));
}

TEST(Matrix, DecodingViaInverse) {
  // B recovered as R^-1 * X with X = R * B — the paper's Sec. 3.1 equations.
  Rng rng(9);
  const Matrix blocks = Matrix::random(8, 32, rng);
  Matrix coefficients = Matrix::random(8, 8, rng);
  Matrix inverse;
  while (!coefficients.invert(&inverse)) {
    coefficients = Matrix::random(8, 8, rng);
  }
  const Matrix coded = coefficients.mul(blocks);
  EXPECT_EQ(inverse.mul(coded), blocks);
}

}  // namespace
}  // namespace omnc::gf

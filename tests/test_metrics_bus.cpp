#include "protocols/metrics_bus.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/topology.h"
#include "routing/node_selection.h"

namespace omnc::protocols {
namespace {

net::Topology diamond() {
  std::vector<std::vector<double>> p(4, std::vector<double>(4, 0.0));
  p[0][1] = p[1][0] = 0.8;
  p[0][2] = p[2][0] = 0.6;
  p[1][3] = p[3][1] = 0.7;
  p[2][3] = p[3][2] = 0.9;
  return net::Topology::from_link_matrix(p);
}

/// Records every event it sees, tagged with the sink's name.
class RecordingSink final : public TraceSink {
 public:
  RecordingSink(std::string name, std::vector<std::string>* log)
      : name_(std::move(name)), log_(log) {}

  void on_event(const MetricEvent& event) override {
    events.push_back(event);
    log_->push_back(name_);
  }

  std::vector<MetricEvent> events;

 private:
  std::string name_;
  std::vector<std::string>* log_;
};

MetricEvent tx_event(double time, net::NodeId node) {
  MetricEvent event;
  event.type = MetricEvent::Type::kTx;
  event.time = time;
  event.node = node;
  return event;
}

TEST(MetricsBus, FansOutInSubscriptionOrderAndCountsEvents) {
  MetricsBus bus;
  std::vector<std::string> log;
  RecordingSink first("first", &log);
  RecordingSink second("second", &log);
  bus.subscribe(&first);
  bus.subscribe(&second);
  EXPECT_EQ(bus.sink_count(), 2u);
  EXPECT_EQ(bus.events_emitted(), 0u);

  bus.emit(tx_event(1.0, 0));
  bus.emit(tx_event(2.0, 1));
  bus.emit(tx_event(3.0, 2));

  EXPECT_EQ(bus.events_emitted(), 3u);
  ASSERT_EQ(first.events.size(), 3u);
  ASSERT_EQ(second.events.size(), 3u);
  // Every sink sees the events in emission order...
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(first.events[i].time, static_cast<double>(i + 1));
    EXPECT_EQ(second.events[i].time, static_cast<double>(i + 1));
  }
  // ...and per event, sinks run in subscription order.
  ASSERT_EQ(log.size(), 6u);
  for (std::size_t i = 0; i < log.size(); i += 2) {
    EXPECT_EQ(log[i], "first");
    EXPECT_EQ(log[i + 1], "second");
  }
}

TEST(MetricsBus, SessionResultSinkRebuildsResult) {
  const net::Topology topo = diamond();
  const routing::SessionGraph graph = routing::select_nodes(topo, 0, 3);
  ASSERT_EQ(graph.size(), 4);

  coding::CodingParams coding{8, 64};  // 512-byte generations
  SessionResultSink sink({&graph}, coding, topo.node_count());
  MetricsBus bus;
  bus.subscribe(&sink);

  // Two transmitters, one innovative delivery on edge 0, one stale
  // reception, a queue-drop, one completed generation ACKed at t=2.
  bus.emit(tx_event(0.5, graph.node_id(graph.source)));
  bus.emit(tx_event(0.6, graph.node_id(graph.source)));
  bus.emit(tx_event(0.7, graph.node_id(1)));

  MetricEvent rx;
  rx.type = MetricEvent::Type::kRx;
  rx.time = 0.55;
  rx.node = graph.node_id(1);
  rx.tx_local = graph.source;
  rx.rx_local = 1;
  rx.edge = 0;
  rx.innovative = true;
  bus.emit(rx);
  rx.innovative = false;
  rx.edge = -1;
  bus.emit(rx);

  MetricEvent sample;
  sample.type = MetricEvent::Type::kQueueSample;
  sample.node = graph.node_id(graph.source);
  sample.time = 1.0;
  sample.value = 2.0;
  bus.emit(sample);
  sample.time = 3.0;
  sample.value = 4.0;
  bus.emit(sample);

  MetricEvent drop;
  drop.type = MetricEvent::Type::kQueueDrop;
  drop.time = 1.5;
  drop.node = graph.node_id(1);
  bus.emit(drop);

  MetricEvent ack;
  ack.type = MetricEvent::Type::kGenerationAck;
  ack.time = 2.0;
  ack.node = graph.node_id(graph.source);
  ack.generation = 0;
  ack.value = 1.6;  // start-to-ACK seconds
  bus.emit(ack);

  const SessionResult result = sink.assemble(0);
  EXPECT_TRUE(result.connected);
  EXPECT_EQ(result.transmissions, 3u);
  EXPECT_EQ(result.packets_delivered, 2u);
  EXPECT_EQ(result.queue_drops, 1u);
  EXPECT_EQ(result.generations_completed, 1);
  EXPECT_DOUBLE_EQ(result.throughput_per_generation, 512.0 / 1.6);
  EXPECT_DOUBLE_EQ(result.throughput_bytes_per_s, 512.0 / 2.0);
  // The source's sampled queue averages 4.0 * (3 - 1) / (3 - 1) = 4.0 (the
  // first sample only starts the clock); node 1 transmitted but never
  // sampled, so the involved-node mean is (4.0 + 0.0) / 2.
  EXPECT_DOUBLE_EQ(result.mean_queue, 2.0);
  // 2 of 3 selectable nodes (source, relays 1 and 2) transmitted.
  EXPECT_DOUBLE_EQ(result.node_utility_ratio, 2.0 / 3.0);
  ASSERT_EQ(sink.edge_innovative(0).size(), graph.edges.size());
  EXPECT_EQ(sink.edge_innovative(0)[0], 1u);

  // Diagnostics from a prepare()-time base record survive assembly.
  SessionResult base;
  base.rc_iterations = 42;
  base.predicted_gamma = 123.0;
  const SessionResult merged = sink.assemble(0, base);
  EXPECT_EQ(merged.rc_iterations, 42);
  EXPECT_DOUBLE_EQ(merged.predicted_gamma, 123.0);
  EXPECT_EQ(merged.transmissions, 3u);
}

TEST(MetricsBus, QueueTimelineAndEdgeDeliverySinks) {
  const net::Topology topo = diamond();
  const routing::SessionGraph graph = routing::select_nodes(topo, 0, 3);

  QueueTimelineSink timeline(topo.node_count());
  EdgeDeliverySink edges({&graph});
  MetricsBus bus;
  bus.subscribe(&timeline);
  bus.subscribe(&edges);

  MetricEvent sample;
  sample.type = MetricEvent::Type::kQueueSample;
  sample.node = 1;
  sample.time = 1.0;
  sample.value = 0.0;
  bus.emit(sample);
  sample.time = 2.0;
  sample.value = 6.0;
  bus.emit(sample);
  sample.time = 4.0;
  sample.value = 0.0;
  bus.emit(sample);

  ASSERT_EQ(timeline.timeline(1).size(), 3u);
  EXPECT_EQ(timeline.timeline(1)[1].time, 2.0);
  EXPECT_EQ(timeline.timeline(1)[1].queue, 6.0);
  // Piecewise-constant time average over [1, 4]: each sample is weighted
  // over the interval preceding it, (6*(2-1) + 0*(4-2)) / 3.
  EXPECT_DOUBLE_EQ(timeline.time_average(1), 2.0);
  EXPECT_TRUE(timeline.timeline(0).empty());

  MetricEvent rx;
  rx.type = MetricEvent::Type::kRx;
  rx.node = graph.node_id(1);
  rx.edge = 2;
  rx.innovative = true;
  bus.emit(rx);
  bus.emit(rx);
  rx.innovative = false;  // non-innovative receptions don't count
  bus.emit(rx);
  rx.innovative = true;
  rx.edge = -1;  // off-DAG reception doesn't count
  bus.emit(rx);

  ASSERT_EQ(edges.deliveries(0).size(), graph.edges.size());
  EXPECT_EQ(edges.deliveries(0)[2], 2u);
  EXPECT_EQ(edges.deliveries(0)[0], 0u);
}

TEST(MetricsBus, SubscribeRejectsNullptrAndUnsubscribeRemoves) {
  MetricsBus bus;
  bus.subscribe(nullptr);  // ignored: optional instrumentation wires nullptr
  EXPECT_EQ(bus.sink_count(), 0u);
  bus.emit(tx_event(1.0, 0));  // must not dereference anything
  EXPECT_EQ(bus.events_emitted(), 1u);

  std::vector<std::string> log;
  RecordingSink first("first", &log);
  RecordingSink second("second", &log);
  bus.subscribe(&first);
  bus.subscribe(&second);
  bus.unsubscribe(&first);
  EXPECT_EQ(bus.sink_count(), 1u);
  bus.emit(tx_event(2.0, 1));
  EXPECT_TRUE(first.events.empty());
  ASSERT_EQ(second.events.size(), 1u);

  bus.unsubscribe(&first);  // unknown sink: no-op
  EXPECT_EQ(bus.sink_count(), 1u);
}

TEST(MetricsBus, SinksIgnoreOutOfRangeNodes) {
  const net::Topology topo = diamond();
  const routing::SessionGraph graph = routing::select_nodes(topo, 0, 3);

  QueueTimelineSink timeline(topo.node_count());
  MetricEvent sample;
  sample.type = MetricEvent::Type::kQueueSample;
  sample.time = 1.0;
  sample.value = 3.0;
  sample.node = topo.node_count();  // one past the end
  timeline.on_event(sample);
  sample.node = -1;
  timeline.on_event(sample);
  for (int node = 0; node < topo.node_count(); ++node) {
    EXPECT_TRUE(timeline.timeline(node).empty());
  }

  EdgeDeliverySink edges({&graph});
  MetricEvent rx;
  rx.type = MetricEvent::Type::kRx;
  rx.innovative = true;
  rx.session = 7;  // unknown session
  rx.edge = 0;
  edges.on_event(rx);
  rx.session = 0;
  rx.edge = static_cast<int>(graph.edges.size());  // edge beyond the graph
  edges.on_event(rx);
  for (std::size_t e = 0; e < graph.edges.size(); ++e) {
    EXPECT_EQ(edges.deliveries(0)[e], 0u);
  }
}

TEST(MetricsBus, EdgeDeliverySinkHandlesEmptyGraphList) {
  EdgeDeliverySink edges({});
  MetricEvent rx;
  rx.type = MetricEvent::Type::kRx;
  rx.innovative = true;
  rx.edge = 0;
  edges.on_event(rx);  // nothing to index; must not crash
}

TEST(MetricsBus, AssembleWithZeroGenerationsYieldsZeroRates) {
  const net::Topology topo = diamond();
  const routing::SessionGraph graph = routing::select_nodes(topo, 0, 3);
  coding::CodingParams coding{8, 64};
  SessionResultSink sink({&graph}, coding, topo.node_count());

  // A couple of transmissions but no completed generation: every rate stays
  // a finite zero (no division by a zero ACK time).
  sink.on_event(tx_event(0.5, graph.node_id(graph.source)));
  const SessionResult result = sink.assemble(0);
  EXPECT_TRUE(result.connected);
  EXPECT_EQ(result.generations_completed, 0);
  EXPECT_EQ(result.throughput_bytes_per_s, 0.0);
  EXPECT_EQ(result.throughput_per_generation, 0.0);
  EXPECT_EQ(result.transmissions, 1u);
  EXPECT_EQ(result.path_utility_ratio, 0.0);
  EXPECT_EQ(sink.shared_mean_queue(), 0.0);
}

TEST(MetricsBus, DetailEventsAreIgnoredByAggregateSinks) {
  const net::Topology topo = diamond();
  const routing::SessionGraph graph = routing::select_nodes(topo, 0, 3);
  coding::CodingParams coding{8, 64};
  SessionResultSink sink({&graph}, coding, topo.node_count());

  MetricEvent contention;
  contention.type = MetricEvent::Type::kMacContention;
  contention.node = graph.node_id(graph.source);
  contention.value = 2.0;
  sink.on_event(contention);
  MetricEvent collision;
  collision.type = MetricEvent::Type::kMacCollision;
  collision.node = graph.node_id(1);
  sink.on_event(collision);

  const SessionResult result = sink.assemble(0);
  EXPECT_EQ(result.transmissions, 0u);
  EXPECT_EQ(result.packets_delivered, 0u);
  EXPECT_EQ(result.queue_drops, 0u);
}

}  // namespace
}  // namespace omnc::protocols

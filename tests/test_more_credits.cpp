#include "protocols/more.h"

#include <gtest/gtest.h>

#include "net/topology.h"
#include "routing/node_selection.h"

namespace omnc::protocols {
namespace {

TEST(MoreCredits, TwoHopChainAnalytic) {
  // S -p1-> R -p2-> T.  z_S = 1 / (1 - (1-p1)(1-p_SR_to_T...)).
  // With no S->T link: z_S = 1/p1 (a transmission "progresses" iff R hears).
  // R must forward every packet it owns: L_R = z_S * p1 = 1, and
  // z_R = 1 / p2.  TX_credit_R = z_R / (z_S * p1) = 1/p2.
  const double p1 = 0.5;
  const double p2 = 0.25;
  std::vector<std::vector<double>> p(3, std::vector<double>(3, 0.0));
  p[0][1] = p[1][0] = p1;
  p[1][2] = p[2][1] = p2;
  const net::Topology topo = net::Topology::from_link_matrix(p);
  const routing::SessionGraph graph = routing::select_nodes(topo, 0, 2);
  ASSERT_EQ(graph.size(), 3);

  std::vector<double> z;
  std::vector<double> credit;
  compute_more_credits(graph, &z, &credit);

  const int src = graph.source;
  const int relay = 3 - graph.source - graph.destination;
  EXPECT_NEAR(z[static_cast<std::size_t>(src)], 1.0 / p1, 1e-9);
  EXPECT_NEAR(z[static_cast<std::size_t>(relay)], 1.0 / p2, 1e-9);
  EXPECT_NEAR(credit[static_cast<std::size_t>(relay)], 1.0 / p2, 1e-9);
}

TEST(MoreCredits, DirectLinkReducesRelayLoad) {
  // With an S->T shortcut, packets T overhears directly never burden R.
  const double p_sr = 0.8;
  const double p_rt = 0.8;
  const double p_st = 0.3;
  std::vector<std::vector<double>> p(3, std::vector<double>(3, 0.0));
  p[0][1] = p[1][0] = p_sr;
  p[1][2] = p[2][1] = p_rt;
  p[0][2] = p[2][0] = p_st;
  const net::Topology topo = net::Topology::from_link_matrix(p);
  const routing::SessionGraph graph = routing::select_nodes(topo, 0, 2);
  ASSERT_EQ(graph.size(), 3);

  std::vector<double> z;
  std::vector<double> credit;
  compute_more_credits(graph, &z, &credit);

  const int src = graph.source;
  const int relay = 3 - graph.source - graph.destination;
  // z_S: progress when either R or T hears.
  const double z_src = 1.0 / (1.0 - (1.0 - p_sr) * (1.0 - p_st));
  EXPECT_NEAR(z[static_cast<std::size_t>(src)], z_src, 1e-9);
  // L_R: heard by R, missed by T.
  const double load_r = z_src * p_sr * (1.0 - p_st);
  EXPECT_NEAR(z[static_cast<std::size_t>(relay)], load_r / p_rt, 1e-9);
  // Credit divides by all receptions from upstream (regardless of T).
  EXPECT_NEAR(credit[static_cast<std::size_t>(relay)],
              (load_r / p_rt) / (z_src * p_sr), 1e-9);
}

TEST(MoreCredits, BetterLinksNeedFewerTransmissions) {
  for (double quality : {0.3, 0.6, 0.9}) {
    std::vector<std::vector<double>> p(3, std::vector<double>(3, 0.0));
    p[0][1] = p[1][0] = quality;
    p[1][2] = p[2][1] = quality;
    const net::Topology topo = net::Topology::from_link_matrix(p);
    const routing::SessionGraph graph = routing::select_nodes(topo, 0, 2);
    std::vector<double> z;
    std::vector<double> credit;
    compute_more_credits(graph, &z, &credit);
    double total = 0.0;
    for (double value : z) total += value;
    EXPECT_NEAR(total, 2.0 / quality, 1e-9);
  }
}

TEST(MoreCredits, DiamondCreditsPositiveForAllForwarders) {
  std::vector<std::vector<double>> p(4, std::vector<double>(4, 0.0));
  p[0][1] = p[1][0] = 0.8;
  p[0][2] = p[2][0] = 0.6;
  p[1][3] = p[3][1] = 0.7;
  p[2][3] = p[3][2] = 0.9;
  const net::Topology topo = net::Topology::from_link_matrix(p);
  const routing::SessionGraph graph = routing::select_nodes(topo, 0, 3);
  std::vector<double> z;
  std::vector<double> credit;
  compute_more_credits(graph, &z, &credit);
  for (int v = 0; v < graph.size(); ++v) {
    if (v == graph.destination) {
      EXPECT_DOUBLE_EQ(z[static_cast<std::size_t>(v)], 0.0);
      continue;
    }
    EXPECT_GT(z[static_cast<std::size_t>(v)], 0.0) << "node " << v;
    if (v != graph.source) {
      EXPECT_GT(credit[static_cast<std::size_t>(v)], 0.0) << "node " << v;
    }
  }
}

TEST(MoreCredits, SourceTransmitsAtLeastOncePerPacket) {
  // z_src >= 1 always (a packet needs at least one transmission).
  std::vector<std::vector<double>> p(4, std::vector<double>(4, 0.0));
  p[0][1] = p[1][0] = 0.9;
  p[0][2] = p[2][0] = 0.9;
  p[1][3] = p[3][1] = 0.9;
  p[2][3] = p[3][2] = 0.9;
  const net::Topology topo = net::Topology::from_link_matrix(p);
  const routing::SessionGraph graph = routing::select_nodes(topo, 0, 3);
  std::vector<double> z;
  std::vector<double> credit;
  compute_more_credits(graph, &z, &credit);
  EXPECT_GE(z[static_cast<std::size_t>(graph.source)], 1.0);
}

}  // namespace
}  // namespace omnc::protocols

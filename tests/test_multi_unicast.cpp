#include "opt/multi_unicast.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "net/topology.h"
#include "opt/sunicast.h"
#include "protocols/multi_unicast.h"
#include "routing/node_selection.h"

namespace omnc::opt {
namespace {

/// Two parallel chains sharing the middle of the field:
///   session A: 0 -> 1 -> 2,  session B: 3 -> 4 -> 5, with the relays 1 and
///   4 within range of each other (they compete for the channel).
net::Topology crossing_chains() {
  std::vector<std::vector<double>> p(6, std::vector<double>(6, 0.0));
  auto link = [&](int a, int b, double q) { p[a][b] = p[b][a] = q; };
  link(0, 1, 0.8);
  link(1, 2, 0.8);
  link(3, 4, 0.8);
  link(4, 5, 0.8);
  link(1, 4, 0.3);  // coupling link: the sessions interfere
  return net::Topology::from_link_matrix(p);
}

class MultiUnicastTest : public ::testing::Test {
 protected:
  MultiUnicastTest()
      : topo_(crossing_chains()),
        graph_a_(routing::select_nodes(topo_, 0, 2)),
        graph_b_(routing::select_nodes(topo_, 3, 5)) {}

  net::Topology topo_;
  routing::SessionGraph graph_a_;
  routing::SessionGraph graph_b_;
};

TEST_F(MultiUnicastTest, JointLpFeasibleAndFair) {
  const auto solution =
      solve_multi_sunicast(topo_, {&graph_a_, &graph_b_}, 1e4);
  ASSERT_TRUE(solution.feasible);
  EXPECT_GT(solution.min_gamma, 0.0);
  ASSERT_EQ(solution.gamma.size(), 2u);
  EXPECT_GE(solution.gamma[0], solution.min_gamma - 1e-6);
  EXPECT_GE(solution.gamma[1], solution.min_gamma - 1e-6);
  // The symmetric instance yields symmetric max-min throughputs.
  EXPECT_NEAR(solution.gamma[0], solution.gamma[1], 1e-4 * solution.gamma[0]);
}

TEST_F(MultiUnicastTest, SharingHalvesSingleSessionThroughput) {
  // Alone, each chain gets the single-session optimum; sharing the coupled
  // channel must cost something but not everything.
  const auto alone = solve_sunicast(graph_a_, 1e4);
  const auto joint = solve_multi_sunicast(topo_, {&graph_a_, &graph_b_}, 1e4);
  ASSERT_TRUE(alone.feasible && joint.feasible);
  EXPECT_LT(joint.gamma[0], alone.gamma + 1e-6);
  EXPECT_GT(joint.gamma[0], 0.3 * alone.gamma);
}

TEST_F(MultiUnicastTest, JointLpRespectsSharedConstraint) {
  const auto solution =
      solve_multi_sunicast(topo_, {&graph_a_, &graph_b_}, 1e4);
  ASSERT_TRUE(solution.feasible);
  EXPECT_LE(multi_broadcast_load_factor(topo_, {&graph_a_, &graph_b_},
                                        solution.b, 1e4),
            1.0 + 1e-6);
}

TEST_F(MultiUnicastTest, DistributedControllerConverges) {
  RateControlParams params;
  params.capacity = 1e4;
  MultiSessionRateControl controller(topo_, {&graph_a_, &graph_b_}, params);
  const auto result = controller.run();
  EXPECT_TRUE(result.converged);
  ASSERT_EQ(result.b.size(), 2u);
  ASSERT_EQ(result.gamma.size(), 2u);
  EXPECT_GT(result.gamma[0], 0.0);
  EXPECT_GT(result.gamma[1], 0.0);
}

TEST_F(MultiUnicastTest, DistributedRatesNearJointLp) {
  RateControlParams params;
  params.capacity = 1e4;
  MultiSessionRateControl controller(topo_, {&graph_a_, &graph_b_}, params);
  auto result = controller.run();
  multi_rescale_to_feasible(topo_, {&graph_a_, &graph_b_}, result.b, 1e4);
  const auto lp = solve_multi_sunicast(topo_, {&graph_a_, &graph_b_}, 1e4);
  ASSERT_TRUE(lp.feasible);
  // Sources must be allocated comparable rates (proportional fairness vs
  // max-min on a symmetric instance agree).
  const double dist_src_a =
      result.b[0][static_cast<std::size_t>(graph_a_.source)];
  const double lp_src_a = lp.b[0][static_cast<std::size_t>(graph_a_.source)];
  EXPECT_GT(dist_src_a, 0.3 * lp_src_a);
  EXPECT_LT(dist_src_a, 3.0 * lp_src_a);
}

TEST_F(MultiUnicastTest, RescaleBringsLoadToOne) {
  std::vector<std::vector<double>> rates = {
      std::vector<double>(static_cast<std::size_t>(graph_a_.size()), 1e4),
      std::vector<double>(static_cast<std::size_t>(graph_b_.size()), 1e4)};
  const double factor = multi_rescale_to_feasible(
      topo_, {&graph_a_, &graph_b_}, rates, 1e4);
  EXPECT_LT(factor, 1.0);
  EXPECT_NEAR(multi_broadcast_load_factor(topo_, {&graph_a_, &graph_b_},
                                          rates, 1e4),
              1.0, 1e-9);
}

TEST_F(MultiUnicastTest, EndToEndBothSessionsDecode) {
  protocols::MultiUnicastConfig config;
  config.protocol.coding.generation_blocks = 8;
  config.protocol.coding.block_bytes = 64;
  config.protocol.mac.capacity_bytes_per_s = 2e4;
  config.protocol.mac.slot_bytes = 12 + 8 + 64;
  config.protocol.mac.fading.enabled = false;
  config.protocol.cbr_bytes_per_s = 1e4;
  config.protocol.max_sim_seconds = 80.0;
  config.protocol.seed = 5;
  protocols::MultiUnicastOmnc runner(topo_, {&graph_a_, &graph_b_}, config);
  const auto result = runner.run();
  ASSERT_EQ(result.sessions.size(), 2u);
  EXPECT_TRUE(result.rc_converged);
  EXPECT_GT(result.sessions[0].generations_completed, 0);
  EXPECT_GT(result.sessions[1].generations_completed, 0);
  EXPECT_GT(result.min_throughput, 0.0);
  EXPECT_GE(result.aggregate_throughput, 2.0 * result.min_throughput - 1e-9);
}

TEST_F(MultiUnicastTest, ThreeSessionsShareOneBottleneck) {
  // Three sessions all relayed by the same middle node: the LP must split
  // the bottleneck's capacity three ways.
  std::vector<std::vector<double>> p(8, std::vector<double>(8, 0.0));
  auto link = [&](int a, int b, double q) { p[a][b] = p[b][a] = q; };
  // Sources 0,1,2 -> shared relay 3 -> destinations 4,5,6 (7 unused).
  for (int src : {0, 1, 2}) link(src, 3, 0.9);
  for (int dst : {4, 5, 6}) link(3, dst, 0.9);
  const net::Topology topo = net::Topology::from_link_matrix(p);
  const auto g0 = routing::select_nodes(topo, 0, 4);
  const auto g1 = routing::select_nodes(topo, 1, 5);
  const auto g2 = routing::select_nodes(topo, 2, 6);
  ASSERT_EQ(g0.size(), 3);
  const auto joint = solve_multi_sunicast(topo, {&g0, &g1, &g2}, 9e3);
  const auto alone = solve_sunicast(g0, 9e3);
  ASSERT_TRUE(joint.feasible && alone.feasible);
  EXPECT_LT(joint.min_gamma, 0.45 * alone.gamma);
  EXPECT_GT(joint.min_gamma, 0.2 * alone.gamma);
}

}  // namespace
}  // namespace omnc::opt

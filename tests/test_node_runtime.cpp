#include "protocols/node_runtime.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "coding/decoder.h"
#include "coding/encoder.h"
#include "common/rng.h"

namespace omnc::protocols {
namespace {

class NodeRuntimeTest : public ::testing::Test {
 protected:
  coding::CodingParams params_{4, 16};
  Rng rng_{77};
};

TEST_F(NodeRuntimeTest, SourceGenerationLifecycle) {
  NodeRuntime source = NodeRuntime::source(params_, 0, /*data_seed=*/5);
  EXPECT_EQ(source.role(), NodeRuntime::Role::kSource);
  EXPECT_FALSE(source.generation_active());
  EXPECT_FALSE(source.can_send(0));

  // CBR gate: at t=0 no bytes have arrived, so nothing starts.
  EXPECT_FALSE(source.maybe_start_generation(0.0, /*cbr=*/64.0,
                                             /*max_generations=*/10));
  // 4 blocks x 16 bytes = 64 bytes: one generation's worth arrives at t=1.
  EXPECT_TRUE(source.maybe_start_generation(1.0, 64.0, 10));
  EXPECT_TRUE(source.generation_active());
  EXPECT_TRUE(source.can_send(0));
  EXPECT_EQ(source.generation_id(), 0u);
  EXPECT_EQ(source.generation_start_time(), 1.0);
  // Already active: no restart.
  EXPECT_FALSE(source.maybe_start_generation(5.0, 64.0, 10));

  source.complete_generation();
  EXPECT_FALSE(source.generation_active());
  EXPECT_EQ(source.generation_id(), 1u);
  EXPECT_EQ(source.generations_completed(), 1);
  // Generation 1 needs 128 cumulative bytes: not there yet at t=1.5.
  EXPECT_FALSE(source.maybe_start_generation(1.5, 64.0, 10));
  EXPECT_TRUE(source.maybe_start_generation(2.0, 64.0, 10));
}

TEST_F(NodeRuntimeTest, SourceRespectsMaxGenerations) {
  NodeRuntime source = NodeRuntime::source(params_, 0, 5);
  EXPECT_TRUE(source.maybe_start_generation(1.0, 64.0, /*max_generations=*/1));
  source.complete_generation();
  // The quota is exhausted; plenty of CBR bytes make no difference.
  EXPECT_FALSE(source.maybe_start_generation(100.0, 64.0, 1));
}

TEST_F(NodeRuntimeTest, SourceIgnoresDataPackets) {
  NodeRuntime source = NodeRuntime::source(params_, 0, 5);
  source.maybe_start_generation(1.0, 64.0, 10);
  const coding::CodedPacket packet = source.next_packet(rng_);
  const NodeRuntime::ReceiveOutcome outcome = source.receive(packet);
  EXPECT_FALSE(outcome.innovative);
  EXPECT_FALSE(outcome.generation_complete);
}

TEST_F(NodeRuntimeTest, RelayInnovationFilterAndFlush) {
  NodeRuntime source = NodeRuntime::source(params_, 0, 5);
  source.maybe_start_generation(1.0, 64.0, 10);
  NodeRuntime relay = NodeRuntime::relay(params_, 0);
  EXPECT_EQ(relay.role(), NodeRuntime::Role::kRelay);
  EXPECT_FALSE(relay.can_send(0));

  const coding::CodedPacket packet = source.next_packet(rng_);
  EXPECT_TRUE(relay.receive(packet).innovative);
  EXPECT_FALSE(relay.receive(packet).innovative);  // duplicate, filtered
  EXPECT_EQ(relay.rank(), 1u);
  EXPECT_TRUE(relay.can_send(0));
  // A relay stuck on an old generation must stay silent.
  EXPECT_FALSE(relay.can_send(1));

  // Re-encoded output stays within the span the relay holds.
  coding::ProgressiveDecoder probe(params_, 0);
  for (int i = 0; i < 16; ++i) probe.offer(relay.next_packet(rng_));
  EXPECT_EQ(probe.rank(), 1u);

  // Flushing to the same generation is a no-op; to a newer one it drops the
  // buffer.
  EXPECT_FALSE(relay.flush_to(0));
  EXPECT_TRUE(relay.flush_to(2));
  EXPECT_EQ(relay.generation_id(), 2u);
  EXPECT_FALSE(relay.can_send(2));
}

TEST_F(NodeRuntimeTest, DestinationDecodesAndAdvances) {
  NodeRuntime source = NodeRuntime::source(params_, 0, 5);
  source.maybe_start_generation(1.0, 64.0, 10);
  NodeRuntime destination = NodeRuntime::destination(params_);
  EXPECT_EQ(destination.role(), NodeRuntime::Role::kDestination);
  EXPECT_FALSE(destination.can_send(0));

  bool complete = false;
  while (!complete) {
    complete = destination.receive(source.next_packet(rng_)).generation_complete;
  }
  EXPECT_EQ(destination.rank(), params_.generation_blocks);
  const auto recovered = destination.recover();
  EXPECT_TRUE(std::equal(recovered.begin(), recovered.end(),
                         source.generation().bytes().begin()));

  destination.advance_generation();
  EXPECT_EQ(destination.generation_id(), 1u);
  EXPECT_EQ(destination.rank(), 0u);
  // Packets of the finished generation are now rejected.
  EXPECT_FALSE(destination.receive(source.next_packet(rng_)).innovative);
}

}  // namespace
}  // namespace omnc::protocols

#include "routing/node_selection.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "net/topology.h"
#include "routing/etx.h"

namespace omnc::routing {
namespace {

net::Topology diamond_with_stray() {
  // 0 (src) -> {1, 2} -> 3 (dst); node 4 hangs off node 0, farther from dst.
  std::vector<std::vector<double>> p(5, std::vector<double>(5, 0.0));
  p[0][1] = p[1][0] = 0.8;
  p[0][2] = p[2][0] = 0.6;
  p[1][3] = p[3][1] = 0.7;
  p[2][3] = p[3][2] = 0.9;
  p[0][4] = p[4][0] = 0.9;
  return net::Topology::from_link_matrix(p);
}

TEST(NodeSelection, SelectsOnlyCloserNodes) {
  const net::Topology topo = diamond_with_stray();
  const SessionGraph graph = select_nodes(topo, 0, 3);
  EXPECT_EQ(graph.size(), 4);  // stray node 4 excluded
  EXPECT_LT(graph.local_index(4), 0);
  EXPECT_GE(graph.local_index(0), 0);
  EXPECT_GE(graph.local_index(1), 0);
  EXPECT_GE(graph.local_index(2), 0);
  EXPECT_GE(graph.local_index(3), 0);
  EXPECT_EQ(graph.node_id(graph.source), 0);
  EXPECT_EQ(graph.node_id(graph.destination), 3);
}

TEST(NodeSelection, EdgesRunFromFartherToCloser) {
  const net::Topology topo = diamond_with_stray();
  const SessionGraph graph = select_nodes(topo, 0, 3);
  EXPECT_EQ(graph.edges.size(), 4u);
  for (const auto& edge : graph.edges) {
    EXPECT_GT(graph.etx_to_dst[static_cast<std::size_t>(edge.from)],
              graph.etx_to_dst[static_cast<std::size_t>(edge.to)]);
    EXPECT_GT(edge.p, 0.0);
  }
}

TEST(NodeSelection, TopologicalOrderStartsAtSourceEndsAtDestination) {
  const net::Topology topo = diamond_with_stray();
  const SessionGraph graph = select_nodes(topo, 0, 3);
  const auto order = graph.topological_order();
  EXPECT_EQ(order.front(), graph.source);
  EXPECT_EQ(order.back(), graph.destination);
}

TEST(NodeSelection, DisconnectedPairYieldsEmptyGraph) {
  std::vector<std::vector<double>> p(4, std::vector<double>(4, 0.0));
  p[0][1] = p[1][0] = 0.9;
  p[2][3] = p[3][2] = 0.9;
  const net::Topology topo = net::Topology::from_link_matrix(p);
  const SessionGraph graph = select_nodes(topo, 0, 3);
  EXPECT_EQ(graph.size(), 0);
}

TEST(NodeSelection, PrunesDeadEndForwarders) {
  // Node 4 is closer to dst than src but has no DAG path onward to dst
  // (its only link back is to the source side).
  std::vector<std::vector<double>> p(5, std::vector<double>(5, 0.0));
  p[0][1] = p[1][0] = 0.6;
  p[1][2] = p[2][1] = 0.6;   // 0 -> 1 -> 2 = dst
  p[0][4] = p[4][0] = 0.95;  // 4 near the source only
  const net::Topology topo = net::Topology::from_link_matrix(p);
  const SessionGraph graph = select_nodes(topo, 0, 2);
  EXPECT_LT(graph.local_index(4), 0);
}

TEST(NodeSelection, RangeNeighborsAreSymmetric) {
  const net::Topology topo = diamond_with_stray();
  const SessionGraph graph = select_nodes(topo, 0, 3);
  for (int a = 0; a < graph.size(); ++a) {
    for (int b : graph.range_neighbors[static_cast<std::size_t>(a)]) {
      const auto& back = graph.range_neighbors[static_cast<std::size_t>(b)];
      EXPECT_NE(std::find(back.begin(), back.end(), a), back.end());
    }
  }
}

TEST(NodeSelection, OutInEdgeIndexing) {
  const net::Topology topo = diamond_with_stray();
  const SessionGraph graph = select_nodes(topo, 0, 3);
  const auto out = graph.out_edges_of(graph.source);
  EXPECT_EQ(out.size(), 2u);  // to both relays
  const auto in = graph.in_edges_of(graph.destination);
  EXPECT_EQ(in.size(), 2u);  // from both relays
  EXPECT_TRUE(graph.in_edges_of(graph.source).empty());
  EXPECT_TRUE(graph.out_edges_of(graph.destination).empty());
}

TEST(NodeSelection, RandomTopologyInvariants) {
  Rng rng(31);
  net::DeploymentConfig config;
  config.nodes = 120;
  const net::Topology topo = net::Topology::random_deployment(config, rng);
  int built = 0;
  for (int trial = 0; trial < 60 && built < 10; ++trial) {
    const net::NodeId src = rng.uniform_int(0, topo.node_count() - 1);
    const net::NodeId dst = rng.uniform_int(0, topo.node_count() - 1);
    if (src == dst) continue;
    const SessionGraph graph = select_nodes(topo, src, dst);
    if (graph.size() < 2) continue;
    ++built;
    // Source farthest, destination at zero distance.
    for (int v = 0; v < graph.size(); ++v) {
      if (v == graph.source) continue;
      EXPECT_LT(graph.etx_to_dst[static_cast<std::size_t>(v)],
                graph.etx_to_dst[static_cast<std::size_t>(graph.source)]);
    }
    EXPECT_DOUBLE_EQ(
        graph.etx_to_dst[static_cast<std::size_t>(graph.destination)], 0.0);
    // Every node reaches the destination in the DAG (guaranteed by pruning):
    // walk greedily along any out-edge.
    for (int v = 0; v < graph.size(); ++v) {
      if (v == graph.destination) continue;
      EXPECT_FALSE(graph.out_edges_of(v).empty());
      EXPECT_TRUE(v == graph.source || !graph.in_edges_of(v).empty());
    }
  }
  EXPECT_GE(built, 5);
}

TEST(NodeSelection, OverheadIsPositiveAndFinite) {
  const net::Topology topo = diamond_with_stray();
  const SessionGraph graph = select_nodes(topo, 0, 3);
  const double overhead = selection_overhead_transmissions(topo, graph);
  EXPECT_GT(overhead, 0.0);
  EXPECT_LT(overhead, 100.0);
}

}  // namespace
}  // namespace omnc::routing

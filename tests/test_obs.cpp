// Observability layer tests: the MetricsRegistry instruments, the JSONL
// trace round trip, and the replay/verify machinery behind trace_inspect.
//
// The central invariant is exactness: a trace written with %.17g doubles and
// replayed through the live sinks must reproduce every recorded statistic
// with EXPECT_EQ on doubles — no tolerance anywhere.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "net/topology.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "obs/trace_inspect.h"
#include "obs/trace_reader.h"
#include "protocols/omnc.h"
#include "routing/node_selection.h"

namespace omnc::obs {
namespace {

net::Topology diamond() {
  std::vector<std::vector<double>> p(4, std::vector<double>(4, 0.0));
  p[0][1] = p[1][0] = 0.8;
  p[0][2] = p[2][0] = 0.6;
  p[1][3] = p[3][1] = 0.7;
  p[2][3] = p[3][2] = 0.9;
  return net::Topology::from_link_matrix(p);
}

protocols::ProtocolConfig pin_config(std::uint64_t seed) {
  protocols::ProtocolConfig config;
  config.coding.generation_blocks = 8;
  config.coding.block_bytes = 64;
  config.mac.capacity_bytes_per_s = 2e4;
  config.mac.slot_bytes = 12 + 8 + 64;
  config.mac.fading.enabled = false;
  config.cbr_bytes_per_s = 1e4;
  config.max_sim_seconds = 60.0;
  config.seed = seed;
  return config;
}

std::string temp_trace_path(const char* name) {
  return testing::TempDir() + name;
}

// --- MetricsRegistry ------------------------------------------------------

TEST(MetricsRegistry, CountersGaugesAndTimers) {
  MetricsRegistry& registry = MetricsRegistry::global();
  registry.reset();

  Counter& counter = registry.counter("test/counter");
  counter.add();
  counter.add(4);
  EXPECT_EQ(counter.value(), 5u);
  // Same name yields the same instrument.
  EXPECT_EQ(&registry.counter("test/counter"), &counter);

  Gauge& gauge = registry.gauge("test/gauge");
  gauge.set(2.5);
  EXPECT_EQ(gauge.value(), 2.5);

  Timer& timer = registry.timer("test/timer");
  timer.record_ns(100);
  timer.record_ns(300);
  EXPECT_EQ(timer.count(), 2u);
  EXPECT_EQ(timer.total_ns(), 400u);
  EXPECT_EQ(timer.min_ns(), 100u);
  EXPECT_EQ(timer.max_ns(), 300u);
  EXPECT_GT(timer.quantile_ns(0.99), 0.0);

  registry.reset();
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(gauge.value(), 0.0);
  EXPECT_EQ(timer.count(), 0u);
  EXPECT_EQ(timer.min_ns(), 0u);
}

TEST(MetricsRegistry, ScopedTimerIsGatedByEnabledFlag) {
  MetricsRegistry& registry = MetricsRegistry::global();
  Timer& timer = registry.timer("test/scoped");
  timer.reset();

  ASSERT_FALSE(MetricsRegistry::enabled());  // off by default
  { ScopedTimer probe(timer); }
  EXPECT_EQ(timer.count(), 0u);  // disabled probes never touch the timer

  MetricsRegistry::set_enabled(true);
  { OMNC_SCOPED_TIMER("test/scoped_macro"); }
  MetricsRegistry::set_enabled(false);
  EXPECT_EQ(registry.timer("test/scoped_macro").count(), 1u);
  registry.reset();
}

TEST(MetricsRegistry, RowsAreSortedAndSummaryRenders) {
  MetricsRegistry& registry = MetricsRegistry::global();
  registry.reset();
  registry.counter("test/b").add(2);
  registry.counter("test/a").add(1);
  const std::vector<MetricRow> rows = registry.rows();
  ASSERT_GE(rows.size(), 2u);
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LT(rows[i - 1].name, rows[i].name);
  }
  EXPECT_NE(registry.summary().find("test/a"), std::string::npos);
  registry.reset();
}

// --- Percentiles ----------------------------------------------------------

TEST(TraceInspect, NearestRankPercentile) {
  EXPECT_EQ(percentile({}, 50.0), 0.0);
  EXPECT_EQ(percentile({7.0}, 50.0), 7.0);
  const std::vector<double> values{4.0, 1.0, 3.0, 2.0};
  EXPECT_EQ(percentile(values, 0.0), 1.0);
  EXPECT_EQ(percentile(values, 50.0), 2.0);
  EXPECT_EQ(percentile(values, 100.0), 4.0);
}

// --- JSONL round trip -----------------------------------------------------

TEST(TraceRoundTrip, ManifestGraphEventsAndResultsSurvive) {
  const net::Topology topo = diamond();
  const routing::SessionGraph graph = routing::select_nodes(topo, 0, 3);
  const std::string path = temp_trace_path("roundtrip.jsonl");

  protocols::MetricEvent rx;
  rx.type = protocols::MetricEvent::Type::kRx;
  rx.time = 0.062599999999999989;  // needs all 17 digits
  rx.session = 0;
  rx.node = 3;
  rx.tx_local = 0;
  rx.rx_local = 3;
  rx.edge = 2;
  rx.innovative = true;

  protocols::SessionResult result;
  result.connected = true;
  result.throughput_bytes_per_s = 2403.7618927090502;
  result.generations_completed = 281;
  result.transmissions = 16586;
  result.predicted_gamma = 3141.5926535897933;

  {
    TraceRecorder recorder(path, "test_obs", "k=1", 0xdeadbeefcafe1234ull);
    ASSERT_TRUE(recorder.ok());
    RunContext ctx;
    ctx.protocol = "omnc";
    ctx.seed = 42;
    ctx.topology_nodes = topo.node_count();
    ctx.generation_blocks = 8;
    ctx.block_bytes = 64;
    const int run = recorder.begin_run(ctx, {&graph});
    recorder.record_event(run, rx);
    recorder.record_opt_iteration(run, 0, 123.456, {1.0, 2.0, 3.0});
    recorder.record_probe(0, 1, 0, 2, 0.6, 0.58499999999999996);
    recorder.end_run(run, {result}, {{10, 20, 30, 40}});
    MetricsRegistry::global().reset();
    MetricsRegistry::global().counter("test/trace_counter").add(7);
    recorder.record_registry();
    MetricsRegistry::global().reset();
  }

  Trace trace;
  std::string error;
  ASSERT_TRUE(read_trace(path, &trace, &error)) << error;
  EXPECT_EQ(trace.schema, kTraceSchemaVersion);
  EXPECT_EQ(trace.tool, "test_obs");
  EXPECT_EQ(trace.params, "k=1");
  EXPECT_EQ(trace.seed, 0xdeadbeefcafe1234ull);

  ASSERT_EQ(trace.runs.size(), 1u);
  const RecordedRun& run = trace.runs.front();
  EXPECT_TRUE(run.completed);
  EXPECT_EQ(run.context.protocol, "omnc");
  EXPECT_EQ(run.context.seed, 42u);
  // The run-level hash mixes the per-graph hashes; same graphs, same hash.
  EXPECT_NE(run.graph_hash, 0u);
  EXPECT_NE(TraceRecorder::hash_graph(graph), 0u);
  routing::SessionGraph tweaked = graph;
  tweaked.edges[0].p += 1e-9;  // the hash covers exact double bits
  EXPECT_NE(TraceRecorder::hash_graph(graph),
            TraceRecorder::hash_graph(tweaked));

  // The reconstructed graph matches structurally.
  ASSERT_EQ(run.graphs.size(), 1u);
  const routing::SessionGraph& round = run.graphs.front();
  EXPECT_EQ(round.size(), graph.size());
  EXPECT_EQ(round.source, graph.source);
  EXPECT_EQ(round.destination, graph.destination);
  ASSERT_EQ(round.edges.size(), graph.edges.size());
  for (std::size_t e = 0; e < graph.edges.size(); ++e) {
    EXPECT_EQ(round.edges[e].from, graph.edges[e].from);
    EXPECT_EQ(round.edges[e].to, graph.edges[e].to);
    EXPECT_EQ(round.edges[e].p, graph.edges[e].p);  // exact double
  }
  for (int local = 0; local < graph.size(); ++local) {
    EXPECT_EQ(round.node_id(local), graph.node_id(local));
    EXPECT_EQ(round.etx_to_dst[static_cast<std::size_t>(local)],
              graph.etx_to_dst[static_cast<std::size_t>(local)]);
  }

  // The event restored every field exactly.
  ASSERT_EQ(run.events.size(), 1u);
  const protocols::MetricEvent& event = run.events.front();
  EXPECT_EQ(event.type, rx.type);
  EXPECT_EQ(event.time, rx.time);
  EXPECT_EQ(event.session, rx.session);
  EXPECT_EQ(event.node, rx.node);
  EXPECT_EQ(event.tx_local, rx.tx_local);
  EXPECT_EQ(event.rx_local, rx.rx_local);
  EXPECT_EQ(event.edge, rx.edge);
  EXPECT_EQ(event.innovative, rx.innovative);

  ASSERT_EQ(run.opt_gamma.size(), 1u);
  EXPECT_EQ(run.opt_gamma[0], 123.456);
  ASSERT_EQ(run.opt_b.size(), 1u);
  EXPECT_EQ(run.opt_b[0], (std::vector<double>{1.0, 2.0, 3.0}));

  ASSERT_EQ(run.results.size(), 1u);
  EXPECT_EQ(run.results[0].connected, true);
  EXPECT_EQ(run.results[0].throughput_bytes_per_s, 2403.7618927090502);
  EXPECT_EQ(run.results[0].generations_completed, 281);
  EXPECT_EQ(run.results[0].transmissions, 16586u);
  EXPECT_EQ(run.results[0].predicted_gamma, 3141.5926535897933);
  ASSERT_EQ(run.edge_innovative.size(), 1u);
  EXPECT_EQ(run.edge_innovative[0],
            (std::vector<std::size_t>{10, 20, 30, 40}));

  ASSERT_EQ(trace.probes.size(), 1u);
  EXPECT_EQ(trace.probes[0].session, 0);
  EXPECT_EQ(trace.probes[0].edge, 1);
  EXPECT_EQ(trace.probes[0].p_true, 0.6);
  EXPECT_EQ(trace.probes[0].p_estimate, 0.58499999999999996);

  bool found_counter = false;
  for (const auto& row : trace.registry) {
    if (row.name == "test/trace_counter") {
      found_counter = true;
      EXPECT_EQ(row.kind, "counter");
      EXPECT_EQ(row.count, 7u);
    }
  }
  EXPECT_TRUE(found_counter);
  std::remove(path.c_str());
}

TEST(TraceRoundTrip, UnreadableFileAndBadSchemaAreErrors) {
  Trace trace;
  std::string error;
  EXPECT_FALSE(read_trace(temp_trace_path("missing.jsonl"), &trace, &error));
  EXPECT_FALSE(error.empty());

  const std::string path = temp_trace_path("badschema.jsonl");
  std::FILE* file = std::fopen(path.c_str(), "w");
  ASSERT_NE(file, nullptr);
  std::fputs("{\"t\":\"manifest\",\"schema\":999}\n", file);
  std::fclose(file);
  error.clear();
  EXPECT_FALSE(read_trace(path, &trace, &error));
  EXPECT_NE(error.find("schema"), std::string::npos);
  std::remove(path.c_str());
}

// --- Live run vs offline replay ------------------------------------------

TEST(TraceReplay, DiamondOmncReplayMatchesLiveRunExactly) {
  const net::Topology topo = diamond();
  const routing::SessionGraph graph = routing::select_nodes(topo, 0, 3);
  const std::string path = temp_trace_path("omnc_live.jsonl");

  protocols::SessionResult live;
  std::vector<std::size_t> live_edges;
  {
    TraceRecorder recorder(path, "test_obs", "diamond", 42);
    ASSERT_TRUE(recorder.ok());
    RunContext ctx;
    ctx.protocol = "omnc";
    ctx.seed = 42;
    ctx.topology_nodes = topo.node_count();
    ctx.generation_blocks = 8;
    ctx.block_bytes = 64;
    ctx.capacity_bytes_per_s = 2e4;
    ctx.cbr_bytes_per_s = 1e4;
    ctx.sim_seconds = 60.0;
    const int run = recorder.begin_run(ctx, {&graph});
    RunSink sink(&recorder, run);
    protocols::OmncProtocol protocol(topo, graph, pin_config(42),
                                     protocols::OmncConfig{});
    protocol.set_trace_sink(sink.sink_or_null());
    live = protocol.run();
    live_edges = protocol.edge_innovative_deliveries();
    recorder.end_run(run, {live}, {live_edges});
  }

  Trace trace;
  std::string error;
  ASSERT_TRUE(read_trace(path, &trace, &error)) << error;
  ASSERT_EQ(trace.runs.size(), 1u);
  const RecordedRun& run = trace.runs.front();

  // Detail families were enabled by the attached sink.
  bool saw_contention = false;
  for (const auto& event : run.events) {
    if (event.type == protocols::MetricEvent::Type::kMacContention) {
      saw_contention = true;
      break;
    }
  }
  EXPECT_TRUE(saw_contention);

  // Replay through fresh sinks: every statistic is bit-identical.
  const ReplayedRun replay = replay_run(run);
  ASSERT_EQ(replay.sessions.size(), 1u);
  const protocols::SessionResult& replayed = replay.sessions[0].result;
  EXPECT_EQ(replayed.throughput_bytes_per_s, live.throughput_bytes_per_s);
  EXPECT_EQ(replayed.throughput_per_generation,
            live.throughput_per_generation);
  EXPECT_EQ(replayed.generations_completed, live.generations_completed);
  EXPECT_EQ(replayed.mean_queue, live.mean_queue);
  EXPECT_EQ(replayed.node_utility_ratio, live.node_utility_ratio);
  EXPECT_EQ(replayed.path_utility_ratio, live.path_utility_ratio);
  EXPECT_EQ(replayed.transmissions, live.transmissions);
  EXPECT_EQ(replayed.packets_delivered, live.packets_delivered);
  EXPECT_EQ(replayed.queue_drops, live.queue_drops);
  EXPECT_EQ(replay.sessions[0].edge_deliveries, live_edges);
  EXPECT_EQ(replay.sessions[0].ack_latencies.size(),
            static_cast<std::size_t>(live.generations_completed));

  // And the bundled verifier agrees.
  const VerifyReport report = verify_trace(trace);
  EXPECT_TRUE(report.ok) << (report.mismatches.empty()
                                 ? ""
                                 : report.mismatches.front());
  EXPECT_GT(report.comparisons, 0u);
  std::remove(path.c_str());
}

TEST(TraceReplay, TamperedResultFailsVerification) {
  const net::Topology topo = diamond();
  const routing::SessionGraph graph = routing::select_nodes(topo, 0, 3);
  const std::string path = temp_trace_path("tampered.jsonl");
  {
    TraceRecorder recorder(path, "test_obs", "diamond", 42);
    RunContext ctx;
    ctx.protocol = "omnc";
    ctx.topology_nodes = topo.node_count();
    ctx.generation_blocks = 8;
    ctx.block_bytes = 64;
    const int run = recorder.begin_run(ctx, {&graph});
    RunSink sink(&recorder, run);
    protocols::OmncProtocol protocol(topo, graph, pin_config(42),
                                     protocols::OmncConfig{});
    protocol.set_trace_sink(sink.sink_or_null());
    protocols::SessionResult live = protocol.run();
    live.transmissions += 1;  // corrupt the ground truth
    recorder.end_run(run, {live}, {protocol.edge_innovative_deliveries()});
  }
  Trace trace;
  std::string error;
  ASSERT_TRUE(read_trace(path, &trace, &error)) << error;
  const VerifyReport report = verify_trace(trace);
  EXPECT_FALSE(report.ok);
  EXPECT_FALSE(report.mismatches.empty());
  std::remove(path.c_str());
}

TEST(TraceReplay, ResultOnlyRunsVerifyVacuously) {
  // The uncoded ETX baseline records results without an event stream (it has
  // no engine, hence no bus); rate-control-only runs record opt_iter series.
  const std::string path = temp_trace_path("result_only.jsonl");
  {
    TraceRecorder recorder(path, "test_obs", "etx", 1);
    RunContext ctx;
    ctx.protocol = "etx";
    const int run = recorder.begin_run(ctx, {});
    protocols::SessionResult result;
    result.connected = true;
    result.throughput_bytes_per_s = 1000.0;
    recorder.end_run(run, {result}, {});

    ctx.protocol = "rate_control";
    const int rc = recorder.begin_run(ctx, {});
    recorder.record_opt_iteration(rc, 0, 10.0, {1.0});
    recorder.record_opt_iteration(rc, 1, 20.0, {2.0});
    protocols::SessionResult diag;
    diag.rc_iterations = 2;
    diag.predicted_gamma = 20.0;
    recorder.end_run(rc, {diag}, {});
  }
  Trace trace;
  std::string error;
  ASSERT_TRUE(read_trace(path, &trace, &error)) << error;
  ASSERT_EQ(trace.runs.size(), 2u);
  const VerifyReport report = verify_trace(trace);
  EXPECT_TRUE(report.ok) << (report.mismatches.empty()
                                 ? ""
                                 : report.mismatches.front());
  std::remove(path.c_str());
}

TEST(TraceReplay, RateControlDiagnosticsMismatchIsCaught) {
  const std::string path = temp_trace_path("rc_mismatch.jsonl");
  {
    TraceRecorder recorder(path, "test_obs", "rc", 1);
    RunContext ctx;
    ctx.protocol = "rate_control";
    const int rc = recorder.begin_run(ctx, {});
    recorder.record_opt_iteration(rc, 0, 10.0, {1.0});
    protocols::SessionResult diag;
    diag.rc_iterations = 5;         // disagrees with the 1 recorded iterate
    diag.predicted_gamma = 10.0;
    recorder.end_run(rc, {diag}, {});
  }
  Trace trace;
  std::string error;
  ASSERT_TRUE(read_trace(path, &trace, &error)) << error;
  EXPECT_FALSE(verify_trace(trace).ok);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace omnc::obs

#include "protocols/oldmore.h"

#include <gtest/gtest.h>

#include "net/topology.h"
#include "routing/node_selection.h"

namespace omnc::protocols {
namespace {

TEST(OldMoreMinCost, ChainCostIsSumOfInverseProbabilities) {
  // On a chain the min-cost program degenerates to ETX: z_i = 1/p_i.
  std::vector<std::vector<double>> p(3, std::vector<double>(3, 0.0));
  p[0][1] = p[1][0] = 0.5;
  p[1][2] = p[2][1] = 0.8;
  const net::Topology topo = net::Topology::from_link_matrix(p);
  const routing::SessionGraph graph = routing::select_nodes(topo, 0, 2);
  const std::vector<double> z = solve_min_cost_rates(graph);
  ASSERT_EQ(z.size(), 3u);
  EXPECT_NEAR(z[static_cast<std::size_t>(graph.source)], 2.0, 1e-6);
  const int relay = 3 - graph.source - graph.destination;
  EXPECT_NEAR(z[static_cast<std::size_t>(relay)], 1.25, 1e-6);
}

TEST(OldMoreMinCost, PrunesRelaysWithExpensiveContinuations) {
  // Node 2 is selected (ETX-closer than the source) but every way it can
  // forward is strictly more expensive than the direct 0 -> 1 -> 3 chain:
  // relaying through it adds an extra hop without saving anything at the
  // broadcasting source.  The min-cost program zeroes it — the pruning the
  // paper attributes to oldMORE.
  std::vector<std::vector<double>> p(4, std::vector<double>(4, 0.0));
  p[0][1] = p[1][0] = 0.9;
  p[1][3] = p[3][1] = 0.9;
  p[0][2] = p[2][0] = 0.6;   // weaker than the 0 -> 1 link
  p[2][1] = p[1][2] = 0.95;  // onward only via relay 1 (extra hop)...
  p[2][3] = p[3][2] = 0.3;   // ...or a very lossy direct link
  const net::Topology topo = net::Topology::from_link_matrix(p);
  const routing::SessionGraph graph = routing::select_nodes(topo, 0, 3);
  ASSERT_EQ(graph.size(), 4);
  const std::vector<double> z = solve_min_cost_rates(graph);
  const int good = graph.local_index(1);
  const int poor = graph.local_index(2);
  EXPECT_GT(z[static_cast<std::size_t>(good)], 0.5);
  EXPECT_LT(z[static_cast<std::size_t>(poor)], 1e-6);
}

TEST(OldMoreMinCost, TotalCostEqualsBestPathEtx) {
  // Per-link accounting makes the optimum exactly the min-ETX path cost —
  // the "favors high-quality paths" behaviour the paper describes.
  std::vector<std::vector<double>> p(4, std::vector<double>(4, 0.0));
  p[0][1] = p[1][0] = 0.5;
  p[0][2] = p[2][0] = 0.5;
  p[1][3] = p[3][1] = 0.8;
  p[2][3] = p[3][2] = 0.9;
  const net::Topology topo = net::Topology::from_link_matrix(p);
  const routing::SessionGraph graph = routing::select_nodes(topo, 0, 3);
  const std::vector<double> z = solve_min_cost_rates(graph);
  double total = 0.0;
  for (double value : z) total += value;
  // Best path: 0 -> 2 -> 3 with ETX 2 + 1/0.9 = 3.111.
  EXPECT_NEAR(total, 2.0 + 1.0 / 0.9, 1e-6);
  // The inferior relay is pruned entirely.
  EXPECT_LT(z[static_cast<std::size_t>(graph.local_index(1))], 1e-9);
}

TEST(OldMoreMinCost, CostScaleInvariantUnderDemand) {
  // Unit-demand z; the protocol scales by the CBR rate at install time, so
  // z itself is demand-independent by construction.  Sanity: all entries
  // finite and nonnegative, destination zero.
  std::vector<std::vector<double>> p(4, std::vector<double>(4, 0.0));
  p[0][1] = p[1][0] = 0.7;
  p[0][2] = p[2][0] = 0.6;
  p[1][3] = p[3][1] = 0.7;
  p[2][3] = p[3][2] = 0.8;
  const net::Topology topo = net::Topology::from_link_matrix(p);
  const routing::SessionGraph graph = routing::select_nodes(topo, 0, 3);
  const std::vector<double> z = solve_min_cost_rates(graph);
  for (int v = 0; v < graph.size(); ++v) {
    EXPECT_GE(z[static_cast<std::size_t>(v)], -1e-9);
    EXPECT_LT(z[static_cast<std::size_t>(v)], 100.0);
  }
  EXPECT_LT(z[static_cast<std::size_t>(graph.destination)], 1e-9);
}

}  // namespace
}  // namespace omnc::protocols

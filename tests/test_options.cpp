#include "common/options.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

namespace omnc {
namespace {

Options make_options(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return Options(static_cast<int>(args.size()),
                 const_cast<char**>(args.data()));
}

TEST(Options, EqualsSyntax) {
  auto opts = make_options({"--sessions=40", "--seed=0x10"});
  EXPECT_EQ(opts.get_int("sessions", 0), 40);
  EXPECT_EQ(opts.get_seed("seed", 0), 16u);
}

TEST(Options, SpaceSyntax) {
  auto opts = make_options({"--name", "value", "--count", "7"});
  EXPECT_EQ(opts.get("name", ""), "value");
  EXPECT_EQ(opts.get_int("count", 0), 7);
}

TEST(Options, BareBooleanFlag) {
  auto opts = make_options({"--paper", "--fast"});
  EXPECT_TRUE(opts.get_bool("paper", false));
  EXPECT_TRUE(opts.get_bool("fast", false));
  EXPECT_FALSE(opts.get_bool("missing", false));
  EXPECT_TRUE(opts.get_bool("missing", true));
}

TEST(Options, BooleanSpellings) {
  auto opts = make_options({"--a=true", "--b=1", "--c=yes", "--d=off"});
  EXPECT_TRUE(opts.get_bool("a", false));
  EXPECT_TRUE(opts.get_bool("b", false));
  EXPECT_TRUE(opts.get_bool("c", false));
  EXPECT_FALSE(opts.get_bool("d", true));
}

TEST(Options, DoublesAndFallbacks) {
  auto opts = make_options({"--rate=2.5"});
  EXPECT_DOUBLE_EQ(opts.get_double("rate", 0.0), 2.5);
  EXPECT_DOUBLE_EQ(opts.get_double("other", 1.25), 1.25);
}

TEST(Options, Positional) {
  auto opts = make_options({"first", "--x=1", "second"});
  ASSERT_EQ(opts.positional().size(), 2u);
  EXPECT_EQ(opts.positional()[0], "first");
  EXPECT_EQ(opts.positional()[1], "second");
}

TEST(Options, EnvironmentFallback) {
  ::setenv("OMNC_TEST_ENV_KNOB", "123", 1);
  auto opts = make_options({});
  EXPECT_EQ(opts.get_int("test-env-knob", 0), 123);
  ::unsetenv("OMNC_TEST_ENV_KNOB");
}

TEST(Options, ArgvBeatsEnvironment) {
  ::setenv("OMNC_PRIO", "env", 1);
  auto opts = make_options({"--prio=argv"});
  EXPECT_EQ(opts.get("prio", ""), "argv");
  ::unsetenv("OMNC_PRIO");
}

TEST(Options, UnusedTracking) {
  auto opts = make_options({"--used=1", "--typo=2"});
  EXPECT_EQ(opts.get_int("used", 0), 1);
  const auto unused = opts.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

}  // namespace
}  // namespace omnc

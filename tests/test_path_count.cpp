#include "routing/path_count.h"

#include <gtest/gtest.h>

#include "net/topology.h"

namespace omnc::routing {
namespace {

SessionGraph diamond_graph() {
  std::vector<std::vector<double>> p(4, std::vector<double>(4, 0.0));
  p[0][1] = p[1][0] = 0.8;
  p[0][2] = p[2][0] = 0.6;
  p[1][3] = p[3][1] = 0.7;
  p[2][3] = p[3][2] = 0.9;
  const net::Topology topo = net::Topology::from_link_matrix(p);
  return select_nodes(topo, 0, 3);
}

TEST(PathCount, DiamondHasTwoPaths) {
  const SessionGraph graph = diamond_graph();
  EXPECT_DOUBLE_EQ(count_paths(graph), 2.0);
}

TEST(PathCount, FilteringRemovesPaths) {
  const SessionGraph graph = diamond_graph();
  std::vector<bool> active(graph.edges.size(), true);
  // Disable one destination-facing edge: one path remains.
  for (std::size_t e = 0; e < graph.edges.size(); ++e) {
    if (graph.edges[e].to == graph.destination) {
      active[e] = false;
      break;
    }
  }
  EXPECT_DOUBLE_EQ(count_paths_filtered(graph, active), 1.0);
}

TEST(PathCount, NoActiveEdgesMeansNoPaths) {
  const SessionGraph graph = diamond_graph();
  std::vector<bool> active(graph.edges.size(), false);
  EXPECT_DOUBLE_EQ(count_paths_filtered(graph, active), 0.0);
  EXPECT_EQ(count_nodes_on_active_paths(graph, active), 0);
}

TEST(PathCount, NodesOnActivePaths) {
  const SessionGraph graph = diamond_graph();
  std::vector<bool> all(graph.edges.size(), true);
  // Source + both relays (destination excluded by definition).
  EXPECT_EQ(count_nodes_on_active_paths(graph, all), 3);
}

TEST(PathCount, LayeredGraphMultipliesPaths) {
  // src -> {a, b} -> {c, d} -> dst, fully connected between layers:
  // 2 * 2 = 4 paths... plus direct cross edges counted by DP.
  std::vector<std::vector<double>> p(6, std::vector<double>(6, 0.0));
  auto link = [&](int i, int j, double q) { p[i][j] = p[j][i] = q; };
  // Distances to dst (node 5) must strictly decrease layer by layer.
  link(0, 1, 0.5);
  link(0, 2, 0.5);
  link(1, 3, 0.6);
  link(1, 4, 0.6);
  link(2, 3, 0.6);
  link(2, 4, 0.6);
  link(3, 5, 0.9);
  link(4, 5, 0.9);
  const net::Topology topo = net::Topology::from_link_matrix(p);
  const SessionGraph graph = select_nodes(topo, 0, 5);
  ASSERT_EQ(graph.size(), 6);
  EXPECT_DOUBLE_EQ(count_paths(graph), 4.0);
}

TEST(PathCount, ChainHasSinglePath) {
  std::vector<std::vector<double>> p(4, std::vector<double>(4, 0.0));
  p[0][1] = p[1][0] = 0.9;
  p[1][2] = p[2][1] = 0.9;
  p[2][3] = p[3][2] = 0.9;
  const net::Topology topo = net::Topology::from_link_matrix(p);
  const SessionGraph graph = select_nodes(topo, 0, 3);
  EXPECT_DOUBLE_EQ(count_paths(graph), 1.0);
  std::vector<bool> all(graph.edges.size(), true);
  EXPECT_EQ(count_nodes_on_active_paths(graph, all), 3);
}

}  // namespace
}  // namespace omnc::routing

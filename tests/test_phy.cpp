#include "net/phy_model.h"

#include <gtest/gtest.h>

namespace omnc::net {
namespace {

TEST(UnitDiskPhy, StepFunction) {
  UnitDiskPhy phy(100.0);
  EXPECT_DOUBLE_EQ(phy.reception_probability(0.0), 1.0);
  EXPECT_DOUBLE_EQ(phy.reception_probability(100.0), 1.0);
  EXPECT_DOUBLE_EQ(phy.reception_probability(100.01), 0.0);
}

TEST(TracePhy, UrbanMeshIsMonotoneNonIncreasing) {
  const TracePhy phy = TracePhy::urban_mesh();
  double last = 1.1;
  for (double d = 0.0; d <= 500.0; d += 5.0) {
    const double p = phy.reception_probability(d);
    EXPECT_LE(p, last + 1e-12) << "d=" << d;
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    last = p;
  }
}

TEST(TracePhy, RangeAtThresholdMatchesPaperDefinition) {
  // The paper defines range as the distance where reception probability
  // drops to 0.2; the default curve is normalized to 250 m.
  const TracePhy phy = TracePhy::urban_mesh();
  EXPECT_NEAR(phy.reception_probability(250.0), 0.2, 1e-9);
  EXPECT_NEAR(phy.range_for_threshold(0.2), 250.0, 1.0);
}

TEST(TracePhy, InterpolatesBetweenControlPoints) {
  TracePhy phy({{0.0, 1.0}, {100.0, 0.0}});
  EXPECT_DOUBLE_EQ(phy.reception_probability(50.0), 0.5);
  EXPECT_DOUBLE_EQ(phy.reception_probability(25.0), 0.75);
}

TEST(TracePhy, ClampsOutsideDomain) {
  TracePhy phy({{10.0, 0.9}, {20.0, 0.1}});
  EXPECT_DOUBLE_EQ(phy.reception_probability(0.0), 0.9);
  EXPECT_DOUBLE_EQ(phy.reception_probability(1000.0), 0.1);
}

TEST(TracePhy, PowerFactorShortensEffectiveDistance) {
  const TracePhy base = TracePhy::urban_mesh(1.0);
  const TracePhy boosted = TracePhy::urban_mesh(2.0);
  // Doubling power makes the link at d behave like one at d/2.
  for (double d : {100.0, 200.0, 300.0}) {
    EXPECT_DOUBLE_EQ(boosted.reception_probability(d),
                     base.reception_probability(d / 2.0));
    EXPECT_GE(boosted.reception_probability(d),
              base.reception_probability(d));
  }
}

TEST(PhyModel, RangeForThresholdBisection) {
  UnitDiskPhy phy(42.0);
  EXPECT_NEAR(phy.range_for_threshold(0.5), 42.0, 0.01);
}

}  // namespace
}  // namespace omnc::net

#include "experiments/probed.h"

#include <gtest/gtest.h>

#include "experiments/runner.h"

namespace omnc::experiments {
namespace {

SessionSpec one_session() {
  WorkloadConfig wc;
  wc.deployment.nodes = 150;
  wc.sessions = 1;
  wc.min_hops = 3;
  wc.max_hops = 7;
  wc.seed = 77;
  return generate_workload(wc).front();
}

TEST(ProbedSession, PreservesStructureAndApproximatesQualities) {
  const SessionSpec spec = one_session();
  ProbeModeConfig config;
  config.probes_per_node = 400;
  config.mac.fading.enabled = false;  // estimate the stationary mean
  const ProbedSession probed = probe_session(spec, config);

  ASSERT_EQ(probed.spec.graph.size(), spec.graph.size());
  ASSERT_EQ(probed.spec.graph.edges.size(), spec.graph.edges.size());
  EXPECT_GT(probed.probe_seconds, 0.0);
  // Sampling error with 400 probes: sigma <= 0.025 per link; allow slack
  // for MAC scheduling artifacts.
  EXPECT_LT(probed.mean_abs_error, 0.08);
  for (std::size_t e = 0; e < spec.graph.edges.size(); ++e) {
    EXPECT_EQ(probed.spec.graph.edges[e].from, spec.graph.edges[e].from);
    EXPECT_EQ(probed.spec.graph.edges[e].to, spec.graph.edges[e].to);
    EXPECT_GT(probed.spec.graph.edges[e].p, 0.0);
    EXPECT_LE(probed.spec.graph.edges[e].p, 1.0);
  }
}

TEST(ProbedSession, ProtocolsRunOnMeasuredGraph) {
  const SessionSpec spec = one_session();
  ProbeModeConfig config;
  config.probes_per_node = 150;
  const ProbedSession probed = probe_session(spec, config);

  RunConfig rc;
  rc.protocol.coding.generation_blocks = 16;
  rc.protocol.coding.block_bytes = 128;
  rc.protocol.mac.slot_bytes = 12 + 16 + 128;
  rc.protocol.max_sim_seconds = 60.0;
  rc.run_oldmore = false;
  const ComparisonResult result = run_comparison(probed.spec, rc);
  EXPECT_GT(result.omnc.throughput_per_generation, 0.0);
  EXPECT_TRUE(result.omnc.rc_converged);
}

TEST(ProbedSession, MoreProbesReduceError) {
  const SessionSpec spec = one_session();
  ProbeModeConfig coarse;
  coarse.probes_per_node = 30;
  coarse.mac.fading.enabled = false;
  ProbeModeConfig fine;
  fine.probes_per_node = 1000;
  fine.mac.fading.enabled = false;
  const double coarse_error = probe_session(spec, coarse).mean_abs_error;
  const double fine_error = probe_session(spec, fine).mean_abs_error;
  EXPECT_LT(fine_error, coarse_error);
}

}  // namespace
}  // namespace omnc::experiments

#include <gtest/gtest.h>

#include "net/topology.h"
#include "protocols/etx_routing.h"
#include "protocols/more.h"
#include "protocols/oldmore.h"
#include "protocols/omnc.h"
#include "routing/node_selection.h"

namespace omnc::protocols {
namespace {

net::Topology diamond() {
  std::vector<std::vector<double>> p(4, std::vector<double>(4, 0.0));
  p[0][1] = p[1][0] = 0.8;
  p[0][2] = p[2][0] = 0.6;
  p[1][3] = p[3][1] = 0.7;
  p[2][3] = p[3][2] = 0.9;
  return net::Topology::from_link_matrix(p);
}

ProtocolConfig fast_config(std::uint64_t seed) {
  ProtocolConfig config;
  config.coding.generation_blocks = 8;
  config.coding.block_bytes = 64;
  config.mac.capacity_bytes_per_s = 2e4;
  config.mac.slot_bytes = 12 + 8 + 64;
  config.mac.fading.enabled = false;
  config.cbr_bytes_per_s = 1e4;
  config.max_sim_seconds = 60.0;
  config.seed = seed;
  return config;
}

TEST(Protocols, OmncDeliversGenerations) {
  const net::Topology topo = diamond();
  const routing::SessionGraph graph = routing::select_nodes(topo, 0, 3);
  OmncProtocol omnc(topo, graph, fast_config(1), OmncConfig{});
  const SessionResult result = omnc.run();
  EXPECT_TRUE(result.connected);
  EXPECT_GT(result.generations_completed, 3);
  EXPECT_GT(result.throughput_bytes_per_s, 0.0);
  EXPECT_GT(result.throughput_per_generation, 0.0);
  EXPECT_GT(result.rc_iterations, 0);
  EXPECT_GT(result.predicted_gamma, 0.0);
  EXPECT_GT(result.transmissions, 0u);
}

TEST(Protocols, OmncRatesInstalledAndFeasible) {
  const net::Topology topo = diamond();
  const routing::SessionGraph graph = routing::select_nodes(topo, 0, 3);
  OmncProtocol omnc(topo, graph, fast_config(2), OmncConfig{});
  omnc.run();
  const auto& rates = omnc.rates();
  ASSERT_EQ(rates.size(), static_cast<std::size_t>(graph.size()));
  for (double rate : rates) {
    EXPECT_GE(rate, 0.0);
    EXPECT_LE(rate, 2e4 + 1e-6);
  }
  EXPECT_GT(rates[static_cast<std::size_t>(graph.source)], 0.0);
}

TEST(Protocols, MoreDeliversGenerations) {
  const net::Topology topo = diamond();
  const routing::SessionGraph graph = routing::select_nodes(topo, 0, 3);
  MoreProtocol more(topo, graph, fast_config(3), MoreConfig{});
  const SessionResult result = more.run();
  EXPECT_GT(result.generations_completed, 3);
  EXPECT_GT(result.throughput_per_generation, 0.0);
  // Credits computed for both relays.
  for (int v = 0; v < graph.size(); ++v) {
    if (v == graph.source || v == graph.destination) continue;
    EXPECT_GT(more.tx_credit()[static_cast<std::size_t>(v)], 0.0);
  }
}

TEST(Protocols, OldMoreDeliversGenerations) {
  const net::Topology topo = diamond();
  const routing::SessionGraph graph = routing::select_nodes(topo, 0, 3);
  OldMoreProtocol oldmore(topo, graph, fast_config(4), OldMoreConfig{});
  const SessionResult result = oldmore.run();
  EXPECT_GT(result.generations_completed, 1);
  EXPECT_GT(result.throughput_per_generation, 0.0);
}

TEST(Protocols, EtxRoutingDeliversAlongBestPath) {
  const net::Topology topo = diamond();
  EtxRoutingProtocol etx(topo, 0, 3, fast_config(5));
  EXPECT_EQ(etx.route(), (std::vector<net::NodeId>{0, 1, 3}));
  const SessionResult result = etx.run();
  EXPECT_TRUE(result.connected);
  EXPECT_GT(result.throughput_bytes_per_s, 0.0);
  EXPECT_GT(result.transmissions, 0u);
}

TEST(Protocols, EtxRoutingDisconnectedReportsNotConnected) {
  std::vector<std::vector<double>> p(4, std::vector<double>(4, 0.0));
  p[0][1] = p[1][0] = 0.9;
  const net::Topology topo = net::Topology::from_link_matrix(p);
  EtxRoutingProtocol etx(topo, 0, 3, fast_config(6));
  const SessionResult result = etx.run();
  EXPECT_FALSE(result.connected);
  EXPECT_DOUBLE_EQ(result.throughput_bytes_per_s, 0.0);
}

TEST(Protocols, ResultsAreDeterministicPerSeed) {
  const net::Topology topo = diamond();
  const routing::SessionGraph graph = routing::select_nodes(topo, 0, 3);
  const SessionResult a =
      OmncProtocol(topo, graph, fast_config(7), OmncConfig{}).run();
  const SessionResult b =
      OmncProtocol(topo, graph, fast_config(7), OmncConfig{}).run();
  EXPECT_EQ(a.generations_completed, b.generations_completed);
  EXPECT_DOUBLE_EQ(a.throughput_per_generation, b.throughput_per_generation);
  EXPECT_EQ(a.transmissions, b.transmissions);
}

TEST(Protocols, DifferentSeedsProduceDifferentRuns) {
  const net::Topology topo = diamond();
  const routing::SessionGraph graph = routing::select_nodes(topo, 0, 3);
  const SessionResult a =
      OmncProtocol(topo, graph, fast_config(8), OmncConfig{}).run();
  const SessionResult b =
      OmncProtocol(topo, graph, fast_config(9), OmncConfig{}).run();
  EXPECT_NE(a.transmissions, b.transmissions);
}

TEST(Protocols, UtilityRatiosWithinBounds) {
  const net::Topology topo = diamond();
  const routing::SessionGraph graph = routing::select_nodes(topo, 0, 3);
  for (int seed = 10; seed < 13; ++seed) {
    const SessionResult result =
        OmncProtocol(topo, graph, fast_config(seed), OmncConfig{}).run();
    EXPECT_GE(result.node_utility_ratio, 0.0);
    EXPECT_LE(result.node_utility_ratio, 1.0);
    EXPECT_GE(result.path_utility_ratio, 0.0);
    EXPECT_LE(result.path_utility_ratio, 1.0);
  }
}

TEST(Protocols, OmncQueuesStaySmallUnderIdealScheduling) {
  // The headline Fig. 3 property: the rate vector satisfies the broadcast
  // constraint (4), so under a scheduler that realizes that capacity region
  // (ideal TDMA) queues stay around or below one packet.  (Under CSMA the
  // contention overhead makes small residual queues possible; the Fig. 3
  // bench measures that configuration.)
  const net::Topology topo = diamond();
  const routing::SessionGraph graph = routing::select_nodes(topo, 0, 3);
  ProtocolConfig config = fast_config(14);
  config.mac.mode = net::MacMode::kIdealScheduling;
  const SessionResult result =
      OmncProtocol(topo, graph, config, OmncConfig{}).run();
  EXPECT_LT(result.mean_queue, 2.0);
}

TEST(Protocols, CbrLimitsGenerationAvailability) {
  // With a very slow CBR the source is data-starved: few generations.
  const net::Topology topo = diamond();
  const routing::SessionGraph graph = routing::select_nodes(topo, 0, 3);
  ProtocolConfig config = fast_config(15);
  config.cbr_bytes_per_s = 100.0;  // one 512 B generation every ~5.1 s
  const SessionResult result =
      OmncProtocol(topo, graph, config, OmncConfig{}).run();
  EXPECT_LE(result.generations_completed, 12);
}

TEST(Protocols, MaxGenerationsStopsSession) {
  const net::Topology topo = diamond();
  const routing::SessionGraph graph = routing::select_nodes(topo, 0, 3);
  ProtocolConfig config = fast_config(16);
  config.max_generations = 2;
  const SessionResult result =
      OmncProtocol(topo, graph, config, OmncConfig{}).run();
  EXPECT_EQ(result.generations_completed, 2);
}

}  // namespace
}  // namespace omnc::protocols

#include "opt/rate_control.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "net/topology.h"
#include "opt/sunicast.h"
#include "routing/node_selection.h"

namespace omnc::opt {
namespace {

routing::SessionGraph diamond_graph() {
  std::vector<std::vector<double>> p(4, std::vector<double>(4, 0.0));
  p[0][1] = p[1][0] = 0.8;
  p[0][2] = p[2][0] = 0.6;
  p[1][3] = p[3][1] = 0.7;
  p[2][3] = p[3][2] = 0.9;
  const net::Topology topo = net::Topology::from_link_matrix(p);
  return routing::select_nodes(topo, 0, 3);
}

TEST(RateControl, ConvergesOnDiamond) {
  const routing::SessionGraph graph = diamond_graph();
  RateControlParams params;
  params.capacity = 1e5;
  DistributedRateControl controller(graph, params);
  const RateControlResult result = controller.run();
  EXPECT_TRUE(result.converged);
  EXPECT_GT(result.iterations, 5);
  EXPECT_LT(result.iterations, params.max_iterations);
  EXPECT_GT(result.messages, 0u);
}

TEST(RateControl, RecoveredRatesNearLpOptimum) {
  const routing::SessionGraph graph = diamond_graph();
  const double capacity = 1e5;
  const SUnicastSolution lp = solve_sunicast(graph, capacity);
  ASSERT_TRUE(lp.feasible);

  RateControlParams params;
  params.capacity = capacity;
  DistributedRateControl controller(graph, params);
  RateControlResult result = controller.run();
  rescale_to_feasible(graph, result.b, capacity);

  // The decomposition is approximate: the recovered rate vector must land
  // within a modest factor of the LP's allocation for every active node.
  for (int v = 0; v < graph.size(); ++v) {
    if (v == graph.destination) continue;
    const double lp_rate = lp.b[static_cast<std::size_t>(v)];
    const double dist_rate = result.b[static_cast<std::size_t>(v)];
    if (lp_rate > 0.05 * capacity) {
      EXPECT_GT(dist_rate, 0.4 * lp_rate) << "node " << v;
      EXPECT_LT(dist_rate, 2.0 * lp_rate) << "node " << v;
    }
  }
  // And the throughput estimate is in the LP's neighborhood.
  EXPECT_GT(result.gamma, 0.5 * lp.gamma);
  EXPECT_LT(result.gamma, 2.0 * lp.gamma);
}

TEST(RateControl, FeasibleAfterRescale) {
  const routing::SessionGraph graph = diamond_graph();
  RateControlParams params;
  params.capacity = 2e4;
  DistributedRateControl controller(graph, params);
  RateControlResult result = controller.run();
  rescale_to_feasible(graph, result.b, params.capacity);
  EXPECT_LE(broadcast_load_factor(graph, result.b, params.capacity),
            1.0 + 1e-9);
  for (double rate : result.b) {
    EXPECT_GE(rate, 0.0);
    EXPECT_LE(rate, params.capacity + 1e-9);
  }
}

TEST(RateControl, TraceRecordsEveryIteration) {
  const routing::SessionGraph graph = diamond_graph();
  RateControlParams params;
  params.capacity = 1e5;
  DistributedRateControl controller(graph, params);
  IterationTrace trace;
  const RateControlResult result = controller.run(&trace);
  EXPECT_EQ(trace.gamma.size(), static_cast<std::size_t>(result.iterations));
  EXPECT_EQ(trace.b.size(), static_cast<std::size_t>(result.iterations));
  for (const auto& b : trace.b) {
    EXPECT_EQ(b.size(), static_cast<std::size_t>(graph.size()));
  }
  // The trace converges: late iterations barely move.
  const auto& last = trace.b.back();
  const auto& prev = trace.b[trace.b.size() - 2];
  for (std::size_t i = 0; i < last.size(); ++i) {
    EXPECT_NEAR(last[i], prev[i], 0.01 * params.capacity);
  }
}

TEST(RateControl, ResultScalesWithCapacity) {
  const routing::SessionGraph graph = diamond_graph();
  RateControlParams params;
  params.capacity = 1e4;
  RateControlResult at1 = DistributedRateControl(graph, params).run();
  params.capacity = 1e5;
  RateControlResult at10 = DistributedRateControl(graph, params).run();
  // The normalized iteration is capacity-invariant: results scale exactly.
  ASSERT_EQ(at1.iterations, at10.iterations);
  for (std::size_t i = 0; i < at1.b.size(); ++i) {
    EXPECT_NEAR(at10.b[i], 10.0 * at1.b[i], 1e-6 * at10.b[i] + 1e-9);
  }
}

TEST(RateControl, DeterministicAcrossRuns) {
  const routing::SessionGraph graph = diamond_graph();
  RateControlParams params;
  params.capacity = 2e4;
  const RateControlResult a = DistributedRateControl(graph, params).run();
  const RateControlResult b = DistributedRateControl(graph, params).run();
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.b, b.b);
  EXPECT_DOUBLE_EQ(a.gamma, b.gamma);
}

TEST(RateControl, IterationCountInPaperBallparkOnRandomSessions) {
  // The paper reports an average of 91 iterations; our tolerance-based
  // stopping rule should land in the same order of magnitude.
  Rng rng(7);
  net::DeploymentConfig config;
  config.nodes = 120;
  const net::Topology topo = net::Topology::random_deployment(config, rng);
  int sessions = 0;
  double total_iters = 0.0;
  for (int trial = 0; trial < 100 && sessions < 10; ++trial) {
    const net::NodeId src = rng.uniform_int(0, 119);
    const net::NodeId dst = rng.uniform_int(0, 119);
    if (src == dst) continue;
    const routing::SessionGraph graph = routing::select_nodes(topo, src, dst);
    if (graph.size() < 4 || graph.edges.empty()) continue;
    RateControlParams params;
    params.capacity = 2e4;
    const RateControlResult result =
        DistributedRateControl(graph, params).run();
    ++sessions;
    total_iters += result.iterations;
  }
  ASSERT_GE(sessions, 5);
  const double mean_iters = total_iters / sessions;
  EXPECT_GT(mean_iters, 20.0);
  EXPECT_LT(mean_iters, 600.0);
}

TEST(RateControl, DestinationGetsNoTransmissionRate) {
  const routing::SessionGraph graph = diamond_graph();
  RateControlParams params;
  params.capacity = 1e5;
  RateControlResult result = DistributedRateControl(graph, params).run();
  // The destination has no outgoing edges, so w_dst = 0 and its rate decays
  // toward zero (it starts at a small epsilon).
  EXPECT_LT(result.b[static_cast<std::size_t>(graph.destination)],
            0.01 * params.capacity);
}

}  // namespace
}  // namespace omnc::opt

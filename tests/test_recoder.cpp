#include "coding/recoder.h"

#include <gtest/gtest.h>

#include "coding/decoder.h"
#include "coding/encoder.h"
#include "common/rng.h"

namespace omnc::coding {
namespace {

class RecoderTest : public ::testing::Test {
 protected:
  CodingParams params_{5, 20};
  Generation gen_ = Generation::synthetic(3, params_, 9);
  SourceEncoder encoder_{gen_, 0};
  Rng rng_{21};
};

TEST_F(RecoderTest, AcceptsOnlyInnovativePackets) {
  Recoder recoder(params_, 0, 3);
  const CodedPacket pkt = encoder_.next_packet(rng_);
  EXPECT_TRUE(recoder.offer(pkt));
  EXPECT_FALSE(recoder.offer(pkt));  // duplicate
  EXPECT_EQ(recoder.rank(), 1u);
}

TEST_F(RecoderTest, CannotSendBeforeFirstPacket) {
  Recoder recoder(params_, 0, 3);
  EXPECT_FALSE(recoder.can_send());
  recoder.offer(encoder_.next_packet(rng_));
  EXPECT_TRUE(recoder.can_send());
}

TEST_F(RecoderTest, RejectsOtherGenerations) {
  Recoder recoder(params_, 0, 99);
  EXPECT_FALSE(recoder.offer(encoder_.next_packet(rng_)));  // gen 3 != 99
}

TEST_F(RecoderTest, RecodedPacketsStayInReceivedSpan) {
  Recoder recoder(params_, 0, 3);
  // Give the relay 3 of the 5 degrees of freedom.
  while (recoder.rank() < 3) recoder.offer(encoder_.next_packet(rng_));
  // Everything it emits must lie in that 3-dimensional span: a decoder fed
  // only by this relay can never exceed rank 3.
  ProgressiveDecoder decoder(params_, 3);
  for (int i = 0; i < 60; ++i) decoder.offer(recoder.recode(rng_));
  EXPECT_EQ(decoder.rank(), 3u);
}

TEST_F(RecoderTest, RecodedPayloadConsistentWithCoefficients) {
  // Feeding a decoder from relays must still reproduce the original data:
  // the re-encoding must transform payload and coefficients identically.
  Recoder recoder(params_, 0, 3);
  while (!recoder.is_full()) recoder.offer(encoder_.next_packet(rng_));
  ProgressiveDecoder decoder(params_, 3);
  while (!decoder.complete()) decoder.offer(recoder.recode(rng_));
  const auto recovered = decoder.recover();
  EXPECT_TRUE(std::equal(recovered.begin(), recovered.end(),
                         gen_.bytes().begin()));
}

TEST_F(RecoderTest, FullRelayStopsAccepting) {
  Recoder recoder(params_, 0, 3);
  while (!recoder.is_full()) recoder.offer(encoder_.next_packet(rng_));
  EXPECT_EQ(recoder.rank(), 5u);
  // Every further packet is necessarily dependent.
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(recoder.offer(encoder_.next_packet(rng_)));
  }
}

TEST_F(RecoderTest, ResetFlushesBufferAndRetargets) {
  Recoder recoder(params_, 0, 3);
  recoder.offer(encoder_.next_packet(rng_));
  recoder.reset(4);
  EXPECT_EQ(recoder.generation_id(), 4u);
  EXPECT_FALSE(recoder.can_send());
  EXPECT_EQ(recoder.rank(), 0u);
}

TEST_F(RecoderTest, TwoHopRelayChainDelivers) {
  // Source -> relay A -> relay B -> decoder, all by re-encoding.
  Recoder relay_a(params_, 0, 3);
  Recoder relay_b(params_, 0, 3);
  ProgressiveDecoder decoder(params_, 3);
  int steps = 0;
  while (!decoder.complete() && steps < 1000) {
    ++steps;
    relay_a.offer(encoder_.next_packet(rng_));
    if (relay_a.can_send()) relay_b.offer(relay_a.recode(rng_));
    if (relay_b.can_send()) decoder.offer(relay_b.recode(rng_));
  }
  ASSERT_TRUE(decoder.complete());
  const auto recovered = decoder.recover();
  EXPECT_TRUE(std::equal(recovered.begin(), recovered.end(),
                         gen_.bytes().begin()));
}

}  // namespace
}  // namespace omnc::coding

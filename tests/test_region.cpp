#include "galois/region.h"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "common/rng.h"
#include "galois/gf256.h"

namespace omnc::gf {
namespace {

constexpr Backend kAllBackends[] = {
    Backend::kScalarTable, Backend::kSse2, Backend::kSsse3, Backend::kAvx2,
    Backend::kGfni,        Backend::kNeon, Backend::kPortable};

std::vector<std::uint8_t> random_bytes(std::size_t n, Rng& rng) {
  std::vector<std::uint8_t> v(n);
  for (auto& b : v) b = rng.next_byte();
  return v;
}

std::vector<Backend> supported_backends() {
  std::vector<Backend> backends;
  for (Backend backend : kAllBackends) {
    if (backend_supported(backend)) backends.push_back(backend);
  }
  return backends;
}

// Parameterized over (backend, region size): every backend must agree with
// scalar GF arithmetic for sizes that exercise the SIMD main loop and the
// scalar tail.
class RegionBackendTest
    : public ::testing::TestWithParam<std::tuple<Backend, std::size_t>> {};

TEST_P(RegionBackendTest, MulMatchesScalarField) {
  const auto [backend, size] = GetParam();
  if (!backend_supported(backend)) GTEST_SKIP();
  Rng rng(1234 + size);
  const auto src = random_bytes(size, rng);
  for (int c : {0, 1, 2, 3, 0x53, 0x80, 0xFF}) {
    std::vector<std::uint8_t> dst(size, 0xAA);
    region_mul_backend(backend, dst.data(), src.data(),
                       static_cast<std::uint8_t>(c), size);
    for (std::size_t i = 0; i < size; ++i) {
      EXPECT_EQ(dst[i], mul(static_cast<std::uint8_t>(c), src[i]))
          << "c=" << c << " i=" << i;
    }
  }
}

TEST_P(RegionBackendTest, AxpyMatchesScalarField) {
  const auto [backend, size] = GetParam();
  if (!backend_supported(backend)) GTEST_SKIP();
  Rng rng(99 + size);
  const auto src = random_bytes(size, rng);
  const auto base = random_bytes(size, rng);
  for (int c : {0, 1, 7, 0x1B, 0xFE}) {
    auto dst = base;
    region_axpy_backend(backend, dst.data(), src.data(),
                        static_cast<std::uint8_t>(c), size);
    for (std::size_t i = 0; i < size; ++i) {
      EXPECT_EQ(dst[i], add(base[i], mul(static_cast<std::uint8_t>(c), src[i])));
    }
  }
}

TEST_P(RegionBackendTest, MulInPlace) {
  const auto [backend, size] = GetParam();
  if (!backend_supported(backend)) GTEST_SKIP();
  Rng rng(7 + size);
  auto data = random_bytes(size, rng);
  const auto original = data;
  region_mul_backend(backend, data.data(), data.data(), 0x35, size);
  for (std::size_t i = 0; i < size; ++i) {
    EXPECT_EQ(data[i], mul(0x35, original[i]));
  }
}

// The ragged lengths hit: empty, sub-register, one-off-register boundaries
// for 16- and 32-byte kernels, and a large region with a tail.
INSTANTIATE_TEST_SUITE_P(
    SizesAndBackends, RegionBackendTest,
    ::testing::Combine(::testing::ValuesIn(kAllBackends),
                       ::testing::Values<std::size_t>(0, 1, 15, 16, 17, 31, 32,
                                                      33, 64, 255, 1024, 1031,
                                                      4096 + 7)));

// ---------------------------------------------------------------------------
// Backend-equivalence property test: every supported backend, over random
// constants and ragged lengths, cross-checked byte-for-byte against the
// bitwise mul_slow reference — including the fused region_axpy2/4 kernels
// and deliberately misaligned source/destination offsets.
// ---------------------------------------------------------------------------

class RegionPropertyTest : public ::testing::TestWithParam<Backend> {};

TEST_P(RegionPropertyTest, KernelsMatchMulSlowOnRaggedMisalignedRegions) {
  const Backend backend = GetParam();
  if (!backend_supported(backend)) GTEST_SKIP();
  Rng rng(20240801);
  const std::size_t sizes[] = {0, 1, 15, 16, 17, 31, 32, 33, 4096 + 7};
  for (const std::size_t size : sizes) {
    for (int trial = 0; trial < 4; ++trial) {
      // Offsets 0..3 knock every buffer off SIMD alignment in different ways.
      const std::size_t dst_off = static_cast<std::size_t>(trial);
      const std::size_t src_off = static_cast<std::size_t>(3 - trial);
      const std::size_t span = size + 4;
      auto dst_buf = random_bytes(span, rng);
      auto s0_buf = random_bytes(span, rng);
      auto s1_buf = random_bytes(span, rng);
      auto s2_buf = random_bytes(span, rng);
      auto s3_buf = random_bytes(span, rng);
      std::uint8_t c[4];
      for (auto& v : c) v = rng.next_byte();
      std::uint8_t* dst = dst_buf.data() + dst_off;
      const std::uint8_t* s0 = s0_buf.data() + src_off;
      const std::uint8_t* s1 = s1_buf.data() + src_off;
      const std::uint8_t* s2 = s2_buf.data() + src_off;
      const std::uint8_t* s3 = s3_buf.data() + src_off;

      // mul
      {
        auto out = dst_buf;
        region_mul_backend(backend, out.data() + dst_off, s0, c[0], size);
        for (std::size_t i = 0; i < size; ++i) {
          ASSERT_EQ(out[dst_off + i], mul_slow(c[0], s0[i]))
              << backend_name(backend) << " mul size=" << size;
        }
      }
      // axpy
      {
        auto out = dst_buf;
        region_axpy_backend(backend, out.data() + dst_off, s0, c[0], size);
        for (std::size_t i = 0; i < size; ++i) {
          ASSERT_EQ(out[dst_off + i],
                    static_cast<std::uint8_t>(dst[i] ^ mul_slow(c[0], s0[i])))
              << backend_name(backend) << " axpy size=" << size;
        }
      }
      // axpy2 (also with a zero and a one constant in the mix)
      for (const std::uint8_t c1 :
           {c[1], static_cast<std::uint8_t>(0), static_cast<std::uint8_t>(1)}) {
        auto out = dst_buf;
        region_axpy2_backend(backend, out.data() + dst_off, s0, c[0], s1, c1,
                             size);
        for (std::size_t i = 0; i < size; ++i) {
          ASSERT_EQ(out[dst_off + i],
                    static_cast<std::uint8_t>(dst[i] ^ mul_slow(c[0], s0[i]) ^
                                              mul_slow(c1, s1[i])))
              << backend_name(backend) << " axpy2 size=" << size;
        }
      }
      // axpy_scatter: one source into three misaligned destinations, with a
      // zero and a one in the coefficient mix
      {
        auto d0 = dst_buf;
        auto d1 = s1_buf;
        auto d2 = s2_buf;
        std::uint8_t* scatter_dsts[3] = {d0.data() + dst_off,
                                         d1.data() + dst_off,
                                         d2.data() + dst_off};
        const std::uint8_t scatter_cs[3] = {c[1], 0, 1};
        region_axpy_scatter_backend(backend, scatter_dsts, scatter_cs, 3, s0,
                                    size);
        for (std::size_t i = 0; i < size; ++i) {
          ASSERT_EQ(d0[dst_off + i],
                    static_cast<std::uint8_t>(dst_buf[dst_off + i] ^
                                              mul_slow(c[1], s0[i])))
              << backend_name(backend) << " scatter size=" << size;
          ASSERT_EQ(d1[dst_off + i], s1_buf[dst_off + i])
              << backend_name(backend) << " scatter c=0 size=" << size;
          ASSERT_EQ(d2[dst_off + i],
                    static_cast<std::uint8_t>(s2_buf[dst_off + i] ^ s0[i]))
              << backend_name(backend) << " scatter c=1 size=" << size;
        }
      }
      // axpy4
      {
        auto out = dst_buf;
        region_axpy4_backend(backend, out.data() + dst_off, s0, c[0], s1, c[1],
                             s2, c[2], s3, c[3], size);
        for (std::size_t i = 0; i < size; ++i) {
          ASSERT_EQ(out[dst_off + i],
                    static_cast<std::uint8_t>(
                        dst[i] ^ mul_slow(c[0], s0[i]) ^ mul_slow(c[1], s1[i]) ^
                        mul_slow(c[2], s2[i]) ^ mul_slow(c[3], s3[i])))
              << backend_name(backend) << " axpy4 size=" << size;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllBackends, RegionPropertyTest,
                         ::testing::ValuesIn(kAllBackends));

TEST(Region, AxpyManyMatchesPerSourceAxpy) {
  Rng rng(77);
  const Backend original = active_backend();
  for (Backend backend : supported_backends()) {
    set_backend(backend);
    for (const std::size_t count : {0u, 1u, 2u, 3u, 4u, 5u, 9u, 16u}) {
      const std::size_t n = 257;
      std::vector<std::vector<std::uint8_t>> sources;
      std::vector<const std::uint8_t*> ptrs;
      std::vector<std::uint8_t> coeffs;
      for (std::size_t k = 0; k < count; ++k) {
        sources.push_back(random_bytes(n, rng));
        ptrs.push_back(sources.back().data());
        // Sprinkle zero coefficients to exercise the skip path.
        coeffs.push_back(k % 3 == 0 ? 0 : rng.next_byte());
      }
      const auto base = random_bytes(n, rng);
      auto fused = base;
      region_axpy_many(fused.data(), ptrs.data(), coeffs.data(), count, n);
      auto reference = base;
      for (std::size_t k = 0; k < count; ++k) {
        region_axpy_backend(Backend::kScalarTable, reference.data(), ptrs[k],
                            coeffs[k], n);
      }
      EXPECT_EQ(fused, reference)
          << backend_name(backend) << " count=" << count;
    }
  }
  set_backend(original);
}

TEST(Region, XorIsAddition) {
  Rng rng(5);
  for (std::size_t size : {1u, 8u, 16u, 100u, 1024u}) {
    const auto a = random_bytes(size, rng);
    const auto b = random_bytes(size, rng);
    auto dst = a;
    region_xor(dst.data(), b.data(), size);
    for (std::size_t i = 0; i < size; ++i) EXPECT_EQ(dst[i], a[i] ^ b[i]);
  }
}

TEST(Region, AxpyWithCoefficientOneIsXor) {
  Rng rng(6);
  const auto src = random_bytes(333, rng);
  const auto base = random_bytes(333, rng);
  auto via_axpy = base;
  region_axpy(via_axpy.data(), src.data(), 1, 333);
  auto via_xor = base;
  region_xor(via_xor.data(), src.data(), 333);
  EXPECT_EQ(via_axpy, via_xor);
}

TEST(Region, TwoAxpysCancel) {
  // Characteristic 2: applying the same axpy twice is the identity.
  Rng rng(8);
  const auto src = random_bytes(512, rng);
  const auto base = random_bytes(512, rng);
  auto dst = base;
  region_axpy(dst.data(), src.data(), 0x7C, 512);
  region_axpy(dst.data(), src.data(), 0x7C, 512);
  EXPECT_EQ(dst, base);
}

TEST(Region, BackendsProduceIdenticalResults) {
  Rng rng(42);
  const auto src = random_bytes(2048, rng);
  std::vector<std::vector<std::uint8_t>> outputs;
  for (Backend backend : supported_backends()) {
    std::vector<std::uint8_t> dst(2048, 0);
    region_mul_backend(backend, dst.data(), src.data(), 0xC3, 2048);
    outputs.push_back(std::move(dst));
  }
  for (std::size_t i = 1; i < outputs.size(); ++i) {
    EXPECT_EQ(outputs[i], outputs[0]);
  }
}

TEST(Region, ActiveBackendSwitching) {
  const Backend original = active_backend();
  for (Backend backend : supported_backends()) {
    set_backend(backend);
    EXPECT_EQ(active_backend(), backend);
    // A small smoke operation through the dispatcher.
    std::uint8_t dst[32] = {0};
    std::uint8_t src[32];
    for (int i = 0; i < 32; ++i) src[i] = static_cast<std::uint8_t>(i * 7);
    region_axpy(dst, src, 0x11, 32);
    for (int i = 0; i < 32; ++i) EXPECT_EQ(dst[i], mul(0x11, src[i]));
  }
  set_backend(original);
}

TEST(Region, BackendNamesAreDistinct) {
  for (Backend a : kAllBackends) {
    for (Backend b : kAllBackends) {
      if (a == b) continue;
      EXPECT_STRNE(backend_name(a), backend_name(b));
    }
  }
}

TEST(Region, UnsupportedBackendsStillResolveNames) {
  // Dispatch metadata must be total even for backends this CPU lacks.
  for (Backend backend : kAllBackends) {
    EXPECT_STRNE(backend_name(backend), "?");
  }
}

TEST(Region, PortableBackendAlwaysSupported) {
  // The SWAR backend needs no vector unit: it must be selectable on every
  // architecture (it is CI's forced-kernel fallback via OMNC_GF_BACKEND).
  EXPECT_TRUE(backend_supported(Backend::kPortable));
}

}  // namespace
}  // namespace omnc::gf

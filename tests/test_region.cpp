#include "galois/region.h"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "common/rng.h"
#include "galois/gf256.h"

namespace omnc::gf {
namespace {

std::vector<std::uint8_t> random_bytes(std::size_t n, Rng& rng) {
  std::vector<std::uint8_t> v(n);
  for (auto& b : v) b = rng.next_byte();
  return v;
}

std::vector<Backend> supported_backends() {
  std::vector<Backend> backends{Backend::kScalarTable};
  if (backend_supported(Backend::kSse2)) backends.push_back(Backend::kSse2);
  if (backend_supported(Backend::kSsse3)) backends.push_back(Backend::kSsse3);
  return backends;
}

// Parameterized over (backend, region size): every backend must agree with
// scalar GF arithmetic for sizes that exercise the SIMD main loop and the
// scalar tail.
class RegionBackendTest
    : public ::testing::TestWithParam<std::tuple<Backend, std::size_t>> {};

TEST_P(RegionBackendTest, MulMatchesScalarField) {
  const auto [backend, size] = GetParam();
  if (!backend_supported(backend)) GTEST_SKIP();
  Rng rng(1234 + size);
  const auto src = random_bytes(size, rng);
  for (int c : {0, 1, 2, 3, 0x53, 0x80, 0xFF}) {
    std::vector<std::uint8_t> dst(size, 0xAA);
    region_mul_backend(backend, dst.data(), src.data(),
                       static_cast<std::uint8_t>(c), size);
    for (std::size_t i = 0; i < size; ++i) {
      EXPECT_EQ(dst[i], mul(static_cast<std::uint8_t>(c), src[i]))
          << "c=" << c << " i=" << i;
    }
  }
}

TEST_P(RegionBackendTest, AxpyMatchesScalarField) {
  const auto [backend, size] = GetParam();
  if (!backend_supported(backend)) GTEST_SKIP();
  Rng rng(99 + size);
  const auto src = random_bytes(size, rng);
  const auto base = random_bytes(size, rng);
  for (int c : {0, 1, 7, 0x1B, 0xFE}) {
    auto dst = base;
    region_axpy_backend(backend, dst.data(), src.data(),
                        static_cast<std::uint8_t>(c), size);
    for (std::size_t i = 0; i < size; ++i) {
      EXPECT_EQ(dst[i], add(base[i], mul(static_cast<std::uint8_t>(c), src[i])));
    }
  }
}

TEST_P(RegionBackendTest, MulInPlace) {
  const auto [backend, size] = GetParam();
  if (!backend_supported(backend)) GTEST_SKIP();
  Rng rng(7 + size);
  auto data = random_bytes(size, rng);
  const auto original = data;
  region_mul_backend(backend, data.data(), data.data(), 0x35, size);
  for (std::size_t i = 0; i < size; ++i) {
    EXPECT_EQ(data[i], mul(0x35, original[i]));
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndBackends, RegionBackendTest,
    ::testing::Combine(::testing::Values(Backend::kScalarTable, Backend::kSse2,
                                         Backend::kSsse3),
                       ::testing::Values<std::size_t>(0, 1, 15, 16, 17, 64,
                                                      255, 1024, 1031)));

TEST(Region, XorIsAddition) {
  Rng rng(5);
  for (std::size_t size : {1u, 8u, 16u, 100u, 1024u}) {
    const auto a = random_bytes(size, rng);
    const auto b = random_bytes(size, rng);
    auto dst = a;
    region_xor(dst.data(), b.data(), size);
    for (std::size_t i = 0; i < size; ++i) EXPECT_EQ(dst[i], a[i] ^ b[i]);
  }
}

TEST(Region, AxpyWithCoefficientOneIsXor) {
  Rng rng(6);
  const auto src = random_bytes(333, rng);
  const auto base = random_bytes(333, rng);
  auto via_axpy = base;
  region_axpy(via_axpy.data(), src.data(), 1, 333);
  auto via_xor = base;
  region_xor(via_xor.data(), src.data(), 333);
  EXPECT_EQ(via_axpy, via_xor);
}

TEST(Region, TwoAxpysCancel) {
  // Characteristic 2: applying the same axpy twice is the identity.
  Rng rng(8);
  const auto src = random_bytes(512, rng);
  const auto base = random_bytes(512, rng);
  auto dst = base;
  region_axpy(dst.data(), src.data(), 0x7C, 512);
  region_axpy(dst.data(), src.data(), 0x7C, 512);
  EXPECT_EQ(dst, base);
}

TEST(Region, BackendsProduceIdenticalResults) {
  Rng rng(42);
  const auto src = random_bytes(2048, rng);
  std::vector<std::vector<std::uint8_t>> outputs;
  for (Backend backend : supported_backends()) {
    std::vector<std::uint8_t> dst(2048, 0);
    region_mul_backend(backend, dst.data(), src.data(), 0xC3, 2048);
    outputs.push_back(std::move(dst));
  }
  for (std::size_t i = 1; i < outputs.size(); ++i) {
    EXPECT_EQ(outputs[i], outputs[0]);
  }
}

TEST(Region, ActiveBackendSwitching) {
  const Backend original = active_backend();
  for (Backend backend : supported_backends()) {
    set_backend(backend);
    EXPECT_EQ(active_backend(), backend);
    // A small smoke operation through the dispatcher.
    std::uint8_t dst[32] = {0};
    std::uint8_t src[32];
    for (int i = 0; i < 32; ++i) src[i] = static_cast<std::uint8_t>(i * 7);
    region_axpy(dst, src, 0x11, 32);
    for (int i = 0; i < 32; ++i) EXPECT_EQ(dst[i], mul(0x11, src[i]));
  }
  set_backend(original);
}

TEST(Region, BackendNamesAreDistinct) {
  EXPECT_STRNE(backend_name(Backend::kScalarTable), backend_name(Backend::kSse2));
  EXPECT_STRNE(backend_name(Backend::kSse2), backend_name(Backend::kSsse3));
}

}  // namespace
}  // namespace omnc::gf

#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace omnc {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextDoubleMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(5);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowCoversAllValues) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const int v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceEdgeCases) {
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-0.5));
    EXPECT_TRUE(rng.chance(1.5));
  }
}

TEST(Rng, ChanceFrequencyMatchesProbability) {
  Rng rng(6);
  const int n = 100000;
  int hits = 0;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, NormalMomentsRoughlyStandard) {
  Rng rng(8);
  const int n = 50000;
  double sum = 0.0;
  double sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sumsq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sumsq / n, 1.0, 0.03);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(10);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[static_cast<std::size_t>(i)] = i;
  std::vector<int> shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, ForkedStreamsAreIndependentAndDeterministic) {
  Rng base1(42);
  Rng base2(42);
  Rng fork1 = base1.fork(5);
  Rng fork2 = base2.fork(5);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(fork1.next_u64(), fork2.next_u64());

  Rng other = base1.fork(6);
  int equal = 0;
  Rng again = base2.fork(5);
  for (int i = 0; i < 64; ++i) {
    if (other.next_u64() == again.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

}  // namespace
}  // namespace omnc

// Robustness and statistical property tests across modules: malformed
// input handling, fading sojourn statistics, and stress shapes that the
// per-module suites don't cover.
#include <gtest/gtest.h>

#include "coding/coded_packet.h"
#include "common/rng.h"
#include "net/mac.h"
#include "net/topology.h"
#include "opt/multi_unicast.h"
#include "opt/sunicast.h"
#include "protocols/multi_unicast.h"
#include "routing/node_selection.h"
#include "sim/simulator.h"

namespace omnc {
namespace {

TEST(Robustness, PacketParserSurvivesRandomBytes) {
  Rng rng(0xf22);
  for (int trial = 0; trial < 2000; ++trial) {
    const std::size_t size = rng.next_below(64);
    std::vector<std::uint8_t> junk(size);
    for (auto& b : junk) b = rng.next_byte();
    coding::CodedPacket out;
    // Must never crash; almost always rejects (a random blob only parses if
    // its length fields happen to match its size exactly).
    coding::CodedPacket::parse(junk, &out);
  }
  SUCCEED();
}

TEST(Robustness, PacketParserRejectsFlippedLengthFields) {
  coding::CodedPacket pkt;
  pkt.session_id = 1;
  pkt.generation_id = 2;
  pkt.generation_blocks = 4;
  pkt.block_bytes = 8;
  pkt.coefficients = {1, 2, 3, 4};
  pkt.payload.assign(8, 7);
  auto wire = pkt.serialize();
  Rng rng(5);
  for (int trial = 0; trial < 500; ++trial) {
    auto corrupted = wire;
    // Flip a random byte in the header's length fields.
    const std::size_t pos = 8 + rng.next_below(4);
    corrupted[pos] ^= static_cast<std::uint8_t>(1 + rng.next_below(255));
    coding::CodedPacket out;
    EXPECT_FALSE(coding::CodedPacket::parse(corrupted, &out));
  }
}

TEST(Robustness, FadingDwellTimesMatchConfiguration) {
  // Measure mean fade duration through the MAC's delivery process: with a
  // perfect link faded to 0, reception gaps reveal fade sojourns.
  std::vector<std::vector<double>> p(2, std::vector<double>(2, 0.0));
  p[0][1] = p[1][0] = 0.5;
  const net::Topology topo = net::Topology::from_link_matrix(p);
  sim::Simulator sim;
  net::MacConfig config;
  config.capacity_bytes_per_s = 1000.0;
  config.slot_bytes = 100;
  config.mode = net::MacMode::kIdealScheduling;
  config.fading.enabled = true;
  config.fading.bad_fraction = 0.5;
  config.fading.bad_scale = 0.0;  // fades kill the link entirely
  config.fading.mean_bad_slots = 25.0;
  net::SlottedMac mac(sim, topo, {0, 1}, config, Rng(4));
  int received = 0;
  mac.set_receive_handler([&](net::NodeId, const net::Frame&) { ++received; });
  mac.add_slot_hook([&](sim::Time) {
    if (mac.queue_size(0) == 0) {
      net::Frame frame;
      frame.from = 0;
      frame.to = net::kBroadcast;
      frame.bytes = std::make_shared<const std::vector<std::uint8_t>>(
          std::vector<std::uint8_t>{1});
      mac.enqueue(frame);
    }
  });
  mac.start();
  sim.run_until(4000.0);  // 40000 slots
  mac.stop();
  // Mean reception probability must still be ~p * (1 - bad_fraction) *
  // p_good where p_good = p / (1 - bad_fraction) = 1.0 capped... with
  // bad_scale 0 and fraction 0.5: p_good = min(0.98, 2 * 0.5) = 0.98 and the
  // mean is re-balanced; expect roughly 0.5 * 0.98.
  const double rate = static_cast<double>(received) /
                      static_cast<double>(mac.transmissions(0));
  EXPECT_NEAR(rate, 0.49, 0.05);
}

TEST(Robustness, SimulatorHandlesMassiveCancellation) {
  sim::Simulator sim;
  Rng rng(9);
  std::vector<sim::EventId> ids;
  int fired = 0;
  for (int i = 0; i < 10000; ++i) {
    ids.push_back(sim.schedule_at(rng.uniform(0.0, 100.0), [&] { ++fired; }));
  }
  rng.shuffle(ids);
  for (std::size_t i = 0; i < 5000; ++i) sim.cancel(ids[i]);
  sim.run();
  EXPECT_EQ(fired, 5000);
}

TEST(Robustness, ThreeConcurrentSessionsEndToEnd) {
  // Three sessions through one shared relay field.
  std::vector<std::vector<double>> p(9, std::vector<double>(9, 0.0));
  auto link = [&](int a, int b, double q) { p[a][b] = p[b][a] = q; };
  // Sources 0,1,2; relays 3,4; destinations 6,7,8.
  for (int src : {0, 1, 2}) {
    link(src, 3, 0.7);
    link(src, 4, 0.6);
  }
  for (int dst : {6, 7, 8}) {
    link(3, dst, 0.7);
    link(4, dst, 0.8);
  }
  const net::Topology topo = net::Topology::from_link_matrix(p);
  const auto g0 = routing::select_nodes(topo, 0, 6);
  const auto g1 = routing::select_nodes(topo, 1, 7);
  const auto g2 = routing::select_nodes(topo, 2, 8);
  ASSERT_GE(g0.size(), 3);
  protocols::MultiUnicastConfig config;
  config.protocol.coding.generation_blocks = 8;
  config.protocol.coding.block_bytes = 64;
  config.protocol.mac.capacity_bytes_per_s = 3e4;
  config.protocol.mac.slot_bytes = 12 + 8 + 64;
  config.protocol.mac.fading.enabled = false;
  config.protocol.cbr_bytes_per_s = 1e4;
  config.protocol.max_sim_seconds = 120.0;
  config.protocol.seed = 17;
  protocols::MultiUnicastOmnc runner(topo, {&g0, &g1, &g2}, config);
  const auto result = runner.run();
  ASSERT_EQ(result.sessions.size(), 3u);
  for (const auto& session : result.sessions) {
    EXPECT_GT(session.generations_completed, 0);
  }
}

TEST(Robustness, SessionGraphWithSingleEdgeWorks) {
  // Degenerate two-node session: source directly in range of destination.
  std::vector<std::vector<double>> p(2, std::vector<double>(2, 0.0));
  p[0][1] = p[1][0] = 0.4;
  const net::Topology topo = net::Topology::from_link_matrix(p);
  const auto graph = routing::select_nodes(topo, 0, 1);
  ASSERT_EQ(graph.size(), 2);
  ASSERT_EQ(graph.edges.size(), 1u);
  const auto lp = opt::solve_sunicast(graph, 1e4);
  ASSERT_TRUE(lp.feasible);
  // gamma = b_S * 0.4 with b_S bounded by the receiver constraint
  // b_dst + b_S <= C (b_dst = 0): gamma = 0.4 C.
  EXPECT_NEAR(lp.gamma, 0.4 * 1e4, 1.0);
  opt::RateControlParams params;
  params.capacity = 1e4;
  const auto rc = opt::DistributedRateControl(graph, params).run();
  EXPECT_TRUE(rc.converged);
}

TEST(Robustness, WideProbabilityRangeRateControl) {
  // Extreme link-quality spread must not break the optimization.
  std::vector<std::vector<double>> p(4, std::vector<double>(4, 0.0));
  p[0][1] = p[1][0] = 0.98;
  p[0][2] = p[2][0] = 0.02;
  p[1][3] = p[3][1] = 0.02;
  p[2][3] = p[3][2] = 0.98;
  const net::Topology topo = net::Topology::from_link_matrix(p);
  const auto graph = routing::select_nodes(topo, 0, 3);
  ASSERT_GE(graph.size(), 2);
  opt::RateControlParams params;
  params.capacity = 2e4;
  const auto rc = opt::DistributedRateControl(graph, params).run();
  EXPECT_GT(rc.gamma, 0.0);
  for (double b : rc.b) {
    EXPECT_GE(b, 0.0);
    EXPECT_LE(b, params.capacity + 1e-9);
  }
}

}  // namespace
}  // namespace omnc

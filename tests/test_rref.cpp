#include "coding/rref.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "galois/gf256.h"
#include "galois/matrix.h"

namespace omnc::coding {
namespace {

std::vector<std::uint8_t> row_of(std::initializer_list<int> values) {
  std::vector<std::uint8_t> row;
  for (int v : values) row.push_back(static_cast<std::uint8_t>(v));
  return row;
}

TEST(Rref, AcceptsIndependentRejectsDependent) {
  RrefAccumulator acc(3, 3);
  EXPECT_TRUE(acc.insert(row_of({1, 0, 0})));
  EXPECT_TRUE(acc.insert(row_of({0, 1, 0})));
  EXPECT_FALSE(acc.insert(row_of({1, 1, 0})));  // in the span
  EXPECT_EQ(acc.rank(), 2u);
  EXPECT_TRUE(acc.insert(row_of({5, 7, 9})));
  EXPECT_TRUE(acc.complete());
}

TEST(Rref, DuplicateRowRejected) {
  RrefAccumulator acc(4, 4);
  EXPECT_TRUE(acc.insert(row_of({2, 3, 4, 5})));
  EXPECT_FALSE(acc.insert(row_of({2, 3, 4, 5})));
  // A scalar multiple is also dependent.
  std::vector<std::uint8_t> scaled(4);
  const auto base = row_of({2, 3, 4, 5});
  for (int i = 0; i < 4; ++i) scaled[i] = gf::mul(base[i], 0x3D);
  EXPECT_FALSE(acc.insert(scaled));
}

TEST(Rref, ZeroRowRejected) {
  RrefAccumulator acc(3, 3);
  EXPECT_FALSE(acc.insert(row_of({0, 0, 0})));
  EXPECT_EQ(acc.rank(), 0u);
}

TEST(Rref, MaintainsReducedForm) {
  // After inserting enough rows, every basis row must have a unit pivot and
  // zeros in every other pivot column.
  Rng rng(3);
  RrefAccumulator acc(8, 8);
  while (!acc.complete()) {
    std::vector<std::uint8_t> row(8);
    for (auto& b : row) b = rng.next_byte();
    acc.insert(row);
  }
  for (std::size_t pivot = 0; pivot < 8; ++pivot) {
    const std::uint8_t* row = acc.coefficients_for_pivot(pivot);
    ASSERT_NE(row, nullptr);
    for (std::size_t c = 0; c < 8; ++c) {
      EXPECT_EQ(row[c], c == pivot ? 1 : 0);
    }
  }
}

TEST(Rref, PayloadFollowsRowOperations) {
  // Rows carry [coefficients | payload]; when complete, the (lazily
  // materialized) payload for pivot i must equal the i-th original block.
  Rng rng(4);
  const gf::Matrix blocks = gf::Matrix::random(5, 13, rng);
  RrefAccumulator acc(5, 5 + 13);
  EXPECT_EQ(acc.payload_bytes(), 13u);
  while (!acc.complete()) {
    // Build a random combination with its payload.
    std::vector<std::uint8_t> row(18, 0);
    for (std::size_t b = 0; b < 5; ++b) {
      const std::uint8_t c = rng.next_byte();
      row[b] = c;
      for (std::size_t k = 0; k < 13; ++k) {
        row[5 + k] = gf::add(row[5 + k], gf::mul(c, blocks.at(b, k)));
      }
    }
    acc.insert(row);
  }
  for (std::size_t b = 0; b < 5; ++b) {
    const std::uint8_t* payload = acc.payload_for_pivot(b);
    ASSERT_NE(payload, nullptr);
    for (std::size_t k = 0; k < 13; ++k) {
      EXPECT_EQ(payload[k], blocks.at(b, k));
    }
  }
}

TEST(Rref, LazyPayloadSurvivesInterleavedReads) {
  // Reading a payload mid-decode materializes it; later inserts that
  // back-substitute into that row must invalidate the cached bytes and
  // re-materialize correctly on the next read.
  Rng rng(11);
  const std::size_t n = 6;
  const std::size_t m = 32;
  const gf::Matrix blocks = gf::Matrix::random(n, m, rng);
  RrefAccumulator acc(n, n + m);
  std::size_t inserted = 0;
  while (!acc.complete()) {
    std::vector<std::uint8_t> row(n + m, 0);
    for (std::size_t b = 0; b < n; ++b) {
      const std::uint8_t c = rng.next_byte();
      row[b] = c;
      for (std::size_t k = 0; k < m; ++k) {
        row[n + k] = gf::add(row[n + k], gf::mul(c, blocks.at(b, k)));
      }
    }
    if (acc.insert(row)) ++inserted;
    // Poke every available payload after every insert: forces repeated
    // materialization and cache invalidation along the way.
    for (std::size_t p = 0; p < n; ++p) {
      const std::uint8_t* payload = acc.payload_for_pivot(p);
      if (acc.coefficients_for_pivot(p) == nullptr) {
        EXPECT_EQ(payload, nullptr);
      } else {
        EXPECT_NE(payload, nullptr);
      }
    }
  }
  EXPECT_EQ(inserted, n);
  for (std::size_t b = 0; b < n; ++b) {
    const std::uint8_t* payload = acc.payload_for_pivot(b);
    ASSERT_NE(payload, nullptr);
    for (std::size_t k = 0; k < m; ++k) {
      EXPECT_EQ(payload[k], blocks.at(b, k));
    }
  }
}

TEST(Rref, PointerInsertMatchesVectorInsert) {
  Rng rng(21);
  RrefAccumulator via_vector(4, 4 + 9);
  RrefAccumulator via_pointers(4, 4 + 9);
  for (int i = 0; i < 12; ++i) {
    std::vector<std::uint8_t> row(13);
    for (auto& b : row) b = rng.next_byte();
    const bool a = via_vector.insert(row);
    const bool b = via_pointers.insert(row.data(), row.data() + 4);
    EXPECT_EQ(a, b);
  }
  EXPECT_EQ(via_vector.rank(), via_pointers.rank());
  for (std::size_t p = 0; p < 4; ++p) {
    const std::uint8_t* pa = via_vector.payload_for_pivot(p);
    const std::uint8_t* pb = via_pointers.payload_for_pivot(p);
    ASSERT_EQ(pa == nullptr, pb == nullptr);
    if (pa != nullptr) {
      EXPECT_TRUE(std::equal(pa, pa + 9, pb));
    }
  }
}

TEST(Rref, CoefficientOnlyAccumulatorHasNoPayload) {
  RrefAccumulator acc(3, 3);  // the relay innovation-filter shape
  EXPECT_EQ(acc.payload_bytes(), 0u);
  ASSERT_TRUE(acc.insert(row_of({1, 2, 3}).data(), nullptr));
  EXPECT_EQ(acc.payload_for_pivot(0), nullptr);
  EXPECT_NE(acc.coefficients_for_pivot(0), nullptr);
}

TEST(Rref, InsertAfterCompleteIsRejected) {
  Rng rng(31);
  RrefAccumulator acc(4, 4);
  while (!acc.complete()) {
    std::vector<std::uint8_t> row(4);
    for (auto& b : row) b = rng.next_byte();
    acc.insert(row);
  }
  std::vector<std::uint8_t> extra(4);
  for (auto& b : extra) b = rng.next_byte();
  EXPECT_FALSE(acc.insert(extra));
  EXPECT_EQ(acc.rank(), 4u);
}

TEST(Rref, WouldBeInnovativeDoesNotMutate) {
  RrefAccumulator acc(3, 3);
  ASSERT_TRUE(acc.insert(row_of({1, 2, 3})));
  const auto candidate = row_of({0, 5, 6});
  EXPECT_TRUE(acc.would_be_innovative(candidate.data()));
  EXPECT_EQ(acc.rank(), 1u);  // unchanged
  const auto dependent = row_of({1, 2, 3});
  EXPECT_FALSE(acc.would_be_innovative(dependent.data()));
  EXPECT_EQ(acc.rank(), 1u);
}

TEST(Rref, WouldBeInnovativeAgreesWithInsertUnderChurn) {
  // The scratch buffer is reused across calls; interleaving checks and
  // inserts must never corrupt either.
  Rng rng(17);
  RrefAccumulator acc(8, 8);
  for (int i = 0; i < 200 && !acc.complete(); ++i) {
    std::vector<std::uint8_t> row(8);
    for (auto& b : row) b = rng.next_byte();
    const bool predicted = acc.would_be_innovative(row.data());
    const bool inserted = acc.insert(row);
    EXPECT_EQ(predicted, inserted);
  }
  EXPECT_TRUE(acc.complete());
}

TEST(Rref, ClearResetsState) {
  RrefAccumulator acc(2, 2);
  ASSERT_TRUE(acc.insert(row_of({1, 1})));
  acc.clear();
  EXPECT_EQ(acc.rank(), 0u);
  EXPECT_EQ(acc.coefficients_for_pivot(0), nullptr);
  EXPECT_TRUE(acc.insert(row_of({1, 1})));  // accepted again after clear
}

TEST(Rref, ClearResetsPayloadArenas) {
  RrefAccumulator acc(3, 3 + 5);
  std::vector<std::uint8_t> row = {1, 0, 0, 9, 8, 7, 6, 5};
  ASSERT_TRUE(acc.insert(row));
  ASSERT_NE(acc.payload_for_pivot(0), nullptr);
  acc.clear();
  EXPECT_EQ(acc.payload_for_pivot(0), nullptr);
  ASSERT_TRUE(acc.insert(row));
  const std::uint8_t* payload = acc.payload_for_pivot(0);
  ASSERT_NE(payload, nullptr);
  EXPECT_EQ(payload[0], 9);
  EXPECT_EQ(payload[4], 5);
}

TEST(Rref, RankNeverExceedsPivotColumns) {
  Rng rng(9);
  RrefAccumulator acc(4, 4);
  for (int i = 0; i < 100; ++i) {
    std::vector<std::uint8_t> row(4);
    for (auto& b : row) b = rng.next_byte();
    acc.insert(row);
    EXPECT_LE(acc.rank(), 4u);
  }
  EXPECT_TRUE(acc.complete());
}

}  // namespace
}  // namespace omnc::coding

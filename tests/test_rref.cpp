#include "coding/rref.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "galois/gf256.h"
#include "galois/matrix.h"

namespace omnc::coding {
namespace {

std::vector<std::uint8_t> row_of(std::initializer_list<int> values) {
  std::vector<std::uint8_t> row;
  for (int v : values) row.push_back(static_cast<std::uint8_t>(v));
  return row;
}

TEST(Rref, AcceptsIndependentRejectsDependent) {
  RrefAccumulator acc(3, 3);
  EXPECT_TRUE(acc.insert(row_of({1, 0, 0})));
  EXPECT_TRUE(acc.insert(row_of({0, 1, 0})));
  EXPECT_FALSE(acc.insert(row_of({1, 1, 0})));  // in the span
  EXPECT_EQ(acc.rank(), 2u);
  EXPECT_TRUE(acc.insert(row_of({5, 7, 9})));
  EXPECT_TRUE(acc.complete());
}

TEST(Rref, DuplicateRowRejected) {
  RrefAccumulator acc(4, 4);
  EXPECT_TRUE(acc.insert(row_of({2, 3, 4, 5})));
  EXPECT_FALSE(acc.insert(row_of({2, 3, 4, 5})));
  // A scalar multiple is also dependent.
  std::vector<std::uint8_t> scaled(4);
  const auto base = row_of({2, 3, 4, 5});
  for (int i = 0; i < 4; ++i) scaled[i] = gf::mul(base[i], 0x3D);
  EXPECT_FALSE(acc.insert(scaled));
}

TEST(Rref, ZeroRowRejected) {
  RrefAccumulator acc(3, 3);
  EXPECT_FALSE(acc.insert(row_of({0, 0, 0})));
  EXPECT_EQ(acc.rank(), 0u);
}

TEST(Rref, MaintainsReducedForm) {
  // After inserting enough rows, every basis row must have a unit pivot and
  // zeros in every other pivot column.
  Rng rng(3);
  RrefAccumulator acc(8, 8);
  while (!acc.complete()) {
    std::vector<std::uint8_t> row(8);
    for (auto& b : row) b = rng.next_byte();
    acc.insert(std::move(row));
  }
  for (std::size_t pivot = 0; pivot < 8; ++pivot) {
    const std::uint8_t* row = acc.row_for_pivot(pivot);
    ASSERT_NE(row, nullptr);
    for (std::size_t c = 0; c < 8; ++c) {
      EXPECT_EQ(row[c], c == pivot ? 1 : 0);
    }
  }
}

TEST(Rref, PayloadFollowsRowOperations) {
  // Rows carry [coefficients | payload]; when complete, the payload part for
  // pivot i must equal the i-th original block.
  Rng rng(4);
  const gf::Matrix blocks = gf::Matrix::random(5, 13, rng);
  RrefAccumulator acc(5, 5 + 13);
  while (!acc.complete()) {
    // Build a random combination with its payload.
    std::vector<std::uint8_t> row(18, 0);
    for (std::size_t b = 0; b < 5; ++b) {
      const std::uint8_t c = rng.next_byte();
      row[b] = c;
      for (std::size_t k = 0; k < 13; ++k) {
        row[5 + k] = gf::add(row[5 + k], gf::mul(c, blocks.at(b, k)));
      }
    }
    acc.insert(std::move(row));
  }
  for (std::size_t b = 0; b < 5; ++b) {
    const std::uint8_t* row = acc.row_for_pivot(b);
    ASSERT_NE(row, nullptr);
    for (std::size_t k = 0; k < 13; ++k) {
      EXPECT_EQ(row[5 + k], blocks.at(b, k));
    }
  }
}

TEST(Rref, WouldBeInnovativeDoesNotMutate) {
  RrefAccumulator acc(3, 3);
  ASSERT_TRUE(acc.insert(row_of({1, 2, 3})));
  const auto candidate = row_of({0, 5, 6});
  EXPECT_TRUE(acc.would_be_innovative(candidate.data()));
  EXPECT_EQ(acc.rank(), 1u);  // unchanged
  const auto dependent = row_of({1, 2, 3});
  EXPECT_FALSE(acc.would_be_innovative(dependent.data()));
  EXPECT_EQ(acc.rank(), 1u);
}

TEST(Rref, ClearResetsState) {
  RrefAccumulator acc(2, 2);
  ASSERT_TRUE(acc.insert(row_of({1, 1})));
  acc.clear();
  EXPECT_EQ(acc.rank(), 0u);
  EXPECT_EQ(acc.row_for_pivot(0), nullptr);
  EXPECT_TRUE(acc.insert(row_of({1, 1})));  // accepted again after clear
}

TEST(Rref, RankNeverExceedsPivotColumns) {
  Rng rng(9);
  RrefAccumulator acc(4, 4);
  for (int i = 0; i < 100; ++i) {
    std::vector<std::uint8_t> row(4);
    for (auto& b : row) b = rng.next_byte();
    acc.insert(std::move(row));
    EXPECT_LE(acc.rank(), 4u);
  }
  EXPECT_TRUE(acc.complete());
}

}  // namespace
}  // namespace omnc::coding

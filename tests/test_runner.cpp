#include "experiments/runner.h"

#include <gtest/gtest.h>

#include "experiments/workload.h"

namespace omnc::experiments {
namespace {

SessionSpec quick_session() {
  WorkloadConfig wc;
  wc.deployment.nodes = 120;
  wc.sessions = 1;
  wc.min_hops = 3;
  wc.max_hops = 6;
  wc.seed = 909;
  return generate_workload(wc).front();
}

RunConfig quick_config() {
  RunConfig rc;
  rc.protocol.coding.generation_blocks = 8;
  rc.protocol.coding.block_bytes = 64;
  rc.protocol.mac.slot_bytes = 12 + 8 + 64;
  rc.protocol.max_sim_seconds = 40.0;
  return rc;
}

TEST(Runner, DisabledProtocolsAreSkipped) {
  const SessionSpec spec = quick_session();
  RunConfig rc = quick_config();
  rc.run_more = false;
  rc.run_oldmore = false;
  const ComparisonResult r = run_comparison(spec, rc);
  EXPECT_GT(r.omnc.transmissions, 0u);
  EXPECT_EQ(r.more.transmissions, 0u);
  EXPECT_EQ(r.oldmore.transmissions, 0u);
  EXPECT_DOUBLE_EQ(r.gain_more, 0.0);
  EXPECT_DOUBLE_EQ(r.gain_oldmore, 0.0);
}

TEST(Runner, LpOnlyWhenRequested) {
  const SessionSpec spec = quick_session();
  RunConfig rc = quick_config();
  EXPECT_DOUBLE_EQ(run_comparison(spec, rc).lp_gamma, 0.0);
  rc.solve_lp = true;
  EXPECT_GT(run_comparison(spec, rc).lp_gamma, 0.0);
}

TEST(Runner, GainUsesEtxBaseline) {
  const SessionSpec spec = quick_session();
  RunConfig rc = quick_config();
  const ComparisonResult r = run_comparison(spec, rc);
  if (r.etx.throughput_bytes_per_s > 0.0) {
    EXPECT_NEAR(r.gain_omnc,
                r.omnc.throughput_per_generation /
                    r.etx.throughput_bytes_per_s,
                1e-12);
  }
}

TEST(Runner, WithoutEtxGainsAreZero) {
  const SessionSpec spec = quick_session();
  RunConfig rc = quick_config();
  rc.run_etx = false;
  const ComparisonResult r = run_comparison(spec, rc);
  EXPECT_DOUBLE_EQ(r.gain_omnc, 0.0);
  EXPECT_GT(r.omnc.throughput_per_generation, 0.0);
}

TEST(Runner, RunAllPreservesOrder) {
  WorkloadConfig wc;
  wc.deployment.nodes = 120;
  wc.sessions = 3;
  wc.min_hops = 3;
  wc.max_hops = 6;
  wc.seed = 911;
  const auto sessions = generate_workload(wc);
  RunConfig rc = quick_config();
  rc.run_more = false;
  rc.run_oldmore = false;
  std::size_t calls = 0;
  const auto results =
      run_all(sessions, rc, nullptr,
              [&](std::size_t done, std::size_t total) {
                ++calls;
                EXPECT_LE(done, total);
              });
  EXPECT_EQ(results.size(), 3u);
  EXPECT_EQ(calls, 3u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].spec_summary.src, sessions[i].src);
  }
}

}  // namespace
}  // namespace omnc::experiments

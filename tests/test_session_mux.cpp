// Session-mux runtime (DESIGN.md §16): S sessions over ONE shared transport
// must (a) replay byte-identically under the deterministic clock, (b) leave
// each session's trajectory untouched by its neighbours when the links are
// lossless (exact equality against S independent single-session runs),
// (c) collapse to exactly the EmuHarness schedule for sessions = 1, and
// (d) reject malformed or cross-session frames at the demux boundary before
// any runtime sees them.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "coding/coded_packet.h"
#include "emu/emu_harness.h"
#include "emu/loopback_transport.h"
#include "emu/session_mux.h"
#include "net/topology.h"
#include "opt/rate_control.h"
#include "opt/sunicast.h"
#include "routing/node_selection.h"
#include "wire/frame.h"

namespace omnc::emu {
namespace {

constexpr double kCapacity = 2e4;

net::Topology diamond(double p_scale = 1.0) {
  std::vector<std::vector<double>> p(4, std::vector<double>(4, 0.0));
  p[0][1] = p[1][0] = 0.8 * p_scale;
  p[0][2] = p[2][0] = 0.6 * p_scale;
  p[1][3] = p[3][1] = 0.7 * p_scale;
  p[2][3] = p[3][2] = 0.9 * p_scale;
  return net::Topology::from_link_matrix(p);
}

/// The Fig. 2 diamond with every link perfect: loss RNG never fires, so
/// sessions sharing the channel cannot perturb each other's packet fates.
net::Topology lossless_diamond() {
  std::vector<std::vector<double>> p(4, std::vector<double>(4, 0.0));
  p[0][1] = p[1][0] = 1.0;
  p[0][2] = p[2][0] = 1.0;
  p[1][3] = p[3][1] = 1.0;
  p[2][3] = p[3][2] = 1.0;
  return net::Topology::from_link_matrix(p);
}

EmuConfig det_config(int generations) {
  EmuConfig config;
  config.node.coding.generation_blocks = 8;
  config.node.coding.block_bytes = 64;
  config.node.cbr_bytes_per_s = 1e4;
  config.node.max_generations = generations;
  config.node.session_id = 1;
  config.node.data_seed = 1;
  config.node.rng_seed = 1;
  config.clock_mode = vtime::ClockMode::kDeterministic;
  config.speedup = 20.0;
  config.virtual_timeout_s = 240.0;
  return config;
}

std::vector<double> oracle_rates(const routing::SessionGraph& graph) {
  opt::RateControlParams params;
  params.capacity = kCapacity;
  opt::DistributedRateControl control(graph, params);
  std::vector<double> rates = control.run().b;
  opt::rescale_to_feasible(graph, rates, kCapacity);
  return rates;
}

std::unique_ptr<LoopbackTransport> make_loopback(
    const net::Topology& topo, const routing::SessionGraph& graph,
    std::uint64_t seed) {
  LoopbackConfig loopback;
  loopback.seed = seed;
  loopback.max_inbox = 1 << 20;  // mux backlogs must not hit the inbox cap
  return std::make_unique<LoopbackTransport>(
      graph.size(), link_matrix_from_topology(topo, graph), loopback);
}

MuxRunResult run_mux(const net::Topology& topo,
                     const routing::SessionGraph& graph, int sessions,
                     vtime::ClockMode clock_mode) {
  const std::unique_ptr<LoopbackTransport> transport =
      make_loopback(topo, graph, 1);
  MuxConfig config;
  config.emu = det_config(3);
  config.emu.clock_mode = clock_mode;
  config.sessions = sessions;
  SessionMux mux(graph, *transport, config);
  mux.install_rates(oracle_rates(graph));
  return mux.run();
}

void expect_session_equal(const EmuRunResult& a, const EmuRunResult& b,
                          const char* label) {
  EXPECT_EQ(a.completed, b.completed) << label;
  EXPECT_EQ(a.data_ok, b.data_ok) << label;
  EXPECT_EQ(a.generations_completed, b.generations_completed) << label;
  EXPECT_EQ(a.goodput_bytes_per_s, b.goodput_bytes_per_s) << label;
  EXPECT_EQ(a.last_ack_time, b.last_ack_time) << label;
  EXPECT_EQ(a.mean_ack_latency, b.mean_ack_latency) << label;
  EXPECT_EQ(a.ack_latencies, b.ack_latencies) << label;
  EXPECT_EQ(a.data_packets_sent, b.data_packets_sent) << label;
  EXPECT_EQ(a.parse_errors, b.parse_errors) << label;
}

TEST(SessionMux, DeterministicReplayIsByteIdenticalAcrossEightSessions) {
  const net::Topology topo = diamond();
  const routing::SessionGraph graph = routing::select_nodes(topo, 0, 3);
  const MuxRunResult first =
      run_mux(topo, graph, 8, vtime::ClockMode::kDeterministic);
  const MuxRunResult second =
      run_mux(topo, graph, 8, vtime::ClockMode::kDeterministic);

  ASSERT_TRUE(first.completed);
  ASSERT_TRUE(first.data_ok);
  ASSERT_EQ(first.sessions.size(), 8u);
  ASSERT_EQ(second.sessions.size(), 8u);
  for (std::size_t s = 0; s < first.sessions.size(); ++s) {
    expect_session_equal(first.sessions[s], second.sessions[s], "replay");
  }
  EXPECT_EQ(first.transport.frames_sent, second.transport.frames_sent);
  EXPECT_EQ(first.transport.copies_delivered,
            second.transport.copies_delivered);
  EXPECT_EQ(first.transport.copies_dropped, second.transport.copies_dropped);
  EXPECT_EQ(first.demux_unroutable, 0u);
  EXPECT_EQ(first.demux_session_mismatch, 0u);
  EXPECT_EQ(first.demux_unknown_session, 0u);
}

TEST(SessionMux, LosslessSessionsMatchIndependentSoloRunsExactly) {
  // On perfect links the shared channel draws no loss RNG, so multiplexing
  // eight sessions must not change any one of them: session s of the mux
  // run equals a single-session EmuHarness run with session s's derived
  // seeds, field for field.
  const net::Topology topo = lossless_diamond();
  const routing::SessionGraph graph = routing::select_nodes(topo, 0, 3);
  const std::vector<double> rates = oracle_rates(graph);

  const int sessions = 8;
  const std::unique_ptr<LoopbackTransport> transport =
      make_loopback(topo, graph, 1);
  MuxConfig mux_config;
  mux_config.emu = det_config(3);
  mux_config.sessions = sessions;
  SessionMux mux(graph, *transport, mux_config);
  mux.install_rates(rates);
  const MuxRunResult muxed = mux.run();
  ASSERT_TRUE(muxed.completed);
  ASSERT_TRUE(muxed.data_ok);
  ASSERT_EQ(muxed.sessions.size(), static_cast<std::size_t>(sessions));

  for (int s = 0; s < sessions; ++s) {
    const std::unique_ptr<LoopbackTransport> solo_transport =
        make_loopback(topo, graph, 1);
    EmuConfig solo = det_config(3);
    solo.node.session_id = 1 + static_cast<std::uint32_t>(s);
    solo.node.data_seed = 1 + static_cast<std::uint64_t>(s);
    solo.node.rng_seed = 1 + static_cast<std::uint64_t>(s);
    EmuHarness harness(graph, *solo_transport, solo);
    harness.install_rates(rates);
    const EmuRunResult alone = harness.run();
    expect_session_equal(muxed.sessions[static_cast<std::size_t>(s)], alone,
                         "solo comparison");
  }
}

TEST(SessionMux, SingleSessionCollapsesToEmuHarnessExactly) {
  // sessions = 1 must be EmuHarness by another name: same deterministic
  // schedule, same RNG draw order, same result — on *lossy* links too.
  const net::Topology topo = diamond();
  const routing::SessionGraph graph = routing::select_nodes(topo, 0, 3);
  const std::vector<double> rates = oracle_rates(graph);

  const std::unique_ptr<LoopbackTransport> mux_transport =
      make_loopback(topo, graph, 1);
  MuxConfig mux_config;
  mux_config.emu = det_config(3);
  mux_config.sessions = 1;
  SessionMux mux(graph, *mux_transport, mux_config);
  mux.install_rates(rates);
  const MuxRunResult muxed = mux.run();
  ASSERT_EQ(muxed.sessions.size(), 1u);

  const std::unique_ptr<LoopbackTransport> harness_transport =
      make_loopback(topo, graph, 1);
  EmuHarness harness(graph, *harness_transport, det_config(3));
  harness.install_rates(rates);
  const EmuRunResult alone = harness.run();

  expect_session_equal(muxed.sessions[0], alone, "harness equivalence");
  EXPECT_EQ(muxed.transport.frames_sent, alone.transport.frames_sent);
  EXPECT_EQ(muxed.transport.copies_delivered,
            alone.transport.copies_delivered);
  EXPECT_EQ(muxed.transport.copies_dropped, alone.transport.copies_dropped);
}

TEST(SessionMux, WarpSoakCompletesEverySession) {
  // Threaded sharded loop under the warp clock: all sessions decode, data
  // checks out, and nothing was rejected at the demux boundary.
  const net::Topology topo = diamond();
  const routing::SessionGraph graph = routing::select_nodes(topo, 0, 3);
  const MuxRunResult result = run_mux(topo, graph, 12, vtime::ClockMode::kWarp);
  EXPECT_TRUE(result.completed);
  EXPECT_TRUE(result.data_ok);
  ASSERT_EQ(result.sessions.size(), 12u);
  for (const EmuRunResult& session : result.sessions) {
    EXPECT_TRUE(session.completed);
    EXPECT_TRUE(session.data_ok);
    EXPECT_EQ(session.generations_completed, 3);
    EXPECT_GT(session.goodput_bytes_per_s, 0.0);
  }
  EXPECT_EQ(result.demux_unroutable, 0u);
  EXPECT_EQ(result.demux_session_mismatch, 0u);
  EXPECT_EQ(result.demux_unknown_session, 0u);
}

coding::CodedPacket sample_packet(std::uint32_t session) {
  coding::CodedPacket packet;
  packet.session_id = session;
  packet.generation_id = 3;
  packet.generation_blocks = 4;
  packet.block_bytes = 8;
  packet.coefficients = {1, 2, 3, 4};
  packet.payload = {10, 20, 30, 40, 50, 60, 70, 80};
  return packet;
}

TEST(SessionMuxDemux, ClassifyAcceptsMatchingDataFrame) {
  const std::vector<std::uint8_t> bytes =
      wire::make_coded_data(sample_packet(7)).serialize();
  std::uint32_t session = 0;
  EXPECT_EQ(SessionMux::classify(bytes, &session),
            SessionMux::DemuxDecision::kDeliver);
  EXPECT_EQ(session, 7u);
}

TEST(SessionMuxDemux, ClassifyAcceptsControlFrames) {
  const std::vector<std::uint8_t> bytes =
      wire::make_ack(9, wire::GenerationAck{42, 3, 17}).serialize();
  std::uint32_t session = 0;
  EXPECT_EQ(SessionMux::classify(bytes, &session),
            SessionMux::DemuxDecision::kDeliver);
  EXPECT_EQ(session, 9u);
}

TEST(SessionMuxDemux, ClassifyRejectsEveryTruncation) {
  const std::vector<std::uint8_t> bytes =
      wire::make_coded_data(sample_packet(7)).serialize();
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    std::uint32_t session = 0;
    EXPECT_EQ(SessionMux::classify({bytes.data(), len}, &session),
              SessionMux::DemuxDecision::kUnroutable)
        << "prefix length " << len;
  }
}

TEST(SessionMuxDemux, ClassifyRejectsHeaderEmbeddedDisagreement) {
  // A frame whose wire header says session 8 but whose embedded coded
  // packet says 7 is corruption or forgery; routing it by either id would
  // leak it across sessions.
  wire::Frame frame = wire::make_coded_data(sample_packet(7));
  frame.session_id = 8;
  const std::vector<std::uint8_t> bytes = frame.serialize();
  std::uint32_t session = 0;
  EXPECT_EQ(SessionMux::classify(bytes, &session),
            SessionMux::DemuxDecision::kSessionMismatch);
}

TEST(SessionMuxDemux, UnknownAndMismatchedFramesNeverReachARuntime) {
  // Inject hostile frames straight onto the shared channel before the run:
  // a well-formed data frame for a session the mux does not host, and a
  // header/embedded disagreement.  Both must land in the demux counters
  // while every real session still completes untouched.
  const net::Topology topo = lossless_diamond();
  const routing::SessionGraph graph = routing::select_nodes(topo, 0, 3);
  const std::unique_ptr<LoopbackTransport> transport =
      make_loopback(topo, graph, 1);
  MuxConfig config;
  config.emu = det_config(3);
  config.sessions = 2;  // hosts wire sessions 1 and 2
  SessionMux mux(graph, *transport, config);
  mux.install_rates(oracle_rates(graph));

  transport->send(0, wire::make_coded_data(sample_packet(99)).serialize());
  wire::Frame forged = wire::make_coded_data(sample_packet(1));
  forged.session_id = 2;  // header claims session 2, body says 1
  transport->send(0, forged.serialize());

  const MuxRunResult result = mux.run();
  EXPECT_TRUE(result.completed);
  EXPECT_TRUE(result.data_ok);
  // Each hostile broadcast reaches every receiving node on perfect-ish
  // links at least once; the exact copy count depends on link loss, so the
  // counters are lower-bounded, not pinned.
  EXPECT_GE(result.demux_unknown_session, 1u);
  EXPECT_GE(result.demux_session_mismatch, 1u);
  EXPECT_EQ(result.demux_unroutable, 0u);
}

TEST(SessionMux, SessionIdsAndSeedsAreDerivedFromTheTemplate) {
  const net::Topology topo = diamond();
  const routing::SessionGraph graph = routing::select_nodes(topo, 0, 3);
  const std::unique_ptr<LoopbackTransport> transport =
      make_loopback(topo, graph, 1);
  MuxConfig config;
  config.emu = det_config(1);
  config.emu.node.session_id = 5;
  config.sessions = 3;
  SessionMux mux(graph, *transport, config);
  EXPECT_EQ(mux.session_id_of(0), 5u);
  EXPECT_EQ(mux.session_id_of(1), 6u);
  EXPECT_EQ(mux.session_id_of(2), 7u);
}

}  // namespace
}  // namespace omnc::emu

// Fixed-seed regression pins for the SessionEngine refactor.
//
// The expected values below were captured from the pre-refactor monolithic
// CodedProtocolBase/MultiUnicastOmnc engines (printed with %.17g, i.e. exact
// doubles) on the diamond topology.  The decomposed engine — NodeRuntime +
// SessionEngine + TransmitPolicy + MetricsBus sinks — must reproduce every
// SessionResult field byte-for-byte: the refactor moved code, not behavior.
// EXPECT_EQ on doubles is deliberate; any drift in RNG consumption order,
// metric summation order, or event sequencing fails loudly here.
//
// Re-captured once when the coefficient draw count became a pinned invariant
// (DESIGN.md §15): the recoder used to re-draw an all-zero multiplier set
// (probability 256^-rank, i.e. 1/256 at rank 1), so long runs consumed a
// different number of RNG bytes than the fixed engine.  The pins below are
// from the pinned-draw engine; the dense code family must keep reproducing
// them byte-for-byte.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "net/topology.h"
#include "obs/trace.h"
#include "protocols/more.h"
#include "protocols/oldmore.h"
#include "protocols/omnc.h"
#include "routing/node_selection.h"

namespace omnc::protocols {
namespace {

net::Topology diamond() {
  std::vector<std::vector<double>> p(4, std::vector<double>(4, 0.0));
  p[0][1] = p[1][0] = 0.8;
  p[0][2] = p[2][0] = 0.6;
  p[1][3] = p[3][1] = 0.7;
  p[2][3] = p[3][2] = 0.9;
  return net::Topology::from_link_matrix(p);
}

ProtocolConfig pin_config(std::uint64_t seed) {
  ProtocolConfig config;
  config.coding.generation_blocks = 8;
  config.coding.block_bytes = 64;
  config.mac.capacity_bytes_per_s = 2e4;
  config.mac.slot_bytes = 12 + 8 + 64;
  config.mac.fading.enabled = false;
  config.cbr_bytes_per_s = 1e4;
  config.max_sim_seconds = 60.0;
  config.seed = seed;
  return config;
}

struct Pin {
  int generations_completed;
  double throughput_bytes_per_s;
  double throughput_per_generation;
  double mean_queue;
  double node_utility_ratio;
  double path_utility_ratio;
  std::size_t transmissions;
  std::size_t packets_delivered;
  std::size_t queue_drops;
  std::vector<std::size_t> edge_innovative;
};

void expect_pinned(const SessionResult& result,
                   const std::vector<std::size_t>& edges, const Pin& pin) {
  EXPECT_TRUE(result.connected);
  EXPECT_EQ(result.generations_completed, pin.generations_completed);
  EXPECT_EQ(result.throughput_bytes_per_s, pin.throughput_bytes_per_s);
  EXPECT_EQ(result.throughput_per_generation, pin.throughput_per_generation);
  EXPECT_EQ(result.mean_queue, pin.mean_queue);
  EXPECT_EQ(result.node_utility_ratio, pin.node_utility_ratio);
  EXPECT_EQ(result.path_utility_ratio, pin.path_utility_ratio);
  EXPECT_EQ(result.transmissions, pin.transmissions);
  EXPECT_EQ(result.packets_delivered, pin.packets_delivered);
  EXPECT_EQ(result.queue_drops, pin.queue_drops);
  EXPECT_EQ(edges, pin.edge_innovative);
}

TEST(SessionRegression, OmncMatchesPreRefactorEngine) {
  const net::Topology topo = diamond();
  const routing::SessionGraph graph = routing::select_nodes(topo, 0, 3);
  OmncProtocol protocol(topo, graph, pin_config(42), OmncConfig{});
  const SessionResult result = protocol.run();
  expect_pinned(result, protocol.edge_innovative_deliveries(),
                Pin{281, 2403.7618927090502, 2526.8628226247683,
                    3.6995006067395515, 1.0, 1.0, 16586, 14668, 0,
                    {2036, 1730, 1126, 1130}});
  EXPECT_TRUE(result.rc_converged);
}

TEST(SessionRegression, OmncWithTracingAttachedMatchesTheSamePins) {
  // Observation must not perturb the simulation: the same run with a trace
  // recorder subscribed (which also switches on the detail event families)
  // reproduces the exact pins of the untraced run above.
  const net::Topology topo = diamond();
  const routing::SessionGraph graph = routing::select_nodes(topo, 0, 3);
  const std::string path = testing::TempDir() + "regression_trace.jsonl";
  {
    obs::TraceRecorder recorder(path, "test_session_regression", "", 42);
    ASSERT_TRUE(recorder.ok());
    obs::RunContext ctx;
    ctx.protocol = "omnc";
    ctx.seed = 42;
    ctx.topology_nodes = topo.node_count();
    ctx.generation_blocks = 8;
    ctx.block_bytes = 64;
    const int run = recorder.begin_run(ctx, {&graph});
    obs::RunSink sink(&recorder, run);
    OmncProtocol protocol(topo, graph, pin_config(42), OmncConfig{});
    protocol.set_trace_sink(sink.sink_or_null());
    const SessionResult result = protocol.run();
    recorder.end_run(run, {result}, {protocol.edge_innovative_deliveries()});
    expect_pinned(result, protocol.edge_innovative_deliveries(),
                  Pin{281, 2403.7618927090502, 2526.8628226247683,
                      3.6995006067395515, 1.0, 1.0, 16586, 14668, 0,
                      {2036, 1730, 1126, 1130}});
  }
  std::remove(path.c_str());
}

TEST(SessionRegression, MoreMatchesPreRefactorEngine) {
  const net::Topology topo = diamond();
  const routing::SessionGraph graph = routing::select_nodes(topo, 0, 3);
  MoreProtocol protocol(topo, graph, pin_config(42), MoreConfig{});
  const SessionResult result = protocol.run();
  expect_pinned(result, protocol.edge_innovative_deliveries(),
                Pin{445, 3803.4664229411424, 3961.7647510912284,
                    0.71513581629794631, 1.0, 1.0, 15089, 16122, 0,
                    {3555, 3367, 1192, 2374}});
}

TEST(SessionRegression, OldMoreMatchesPreRefactorEngine) {
  const net::Topology topo = diamond();
  const routing::SessionGraph graph = routing::select_nodes(topo, 0, 3);
  OldMoreProtocol protocol(topo, graph, pin_config(42), OldMoreConfig{});
  const SessionResult result = protocol.run();
  expect_pinned(result, protocol.edge_innovative_deliveries(),
                Pin{389, 3322.7312501206247, 3428.2898406575428,
                    1.5104312517501581, 0.66666666666666663, 0.5, 14147,
                    15783, 0,
                    {3115, 3082, 3115, 0}});
}

TEST(SessionRegression, MoreWithFadingAndStaleFlushMatches) {
  // Exercises the Gilbert-Elliott fading path and the flush_stale_frames
  // purge predicates, which consume RNG and mutate MAC queues differently.
  const net::Topology topo = diamond();
  const routing::SessionGraph graph = routing::select_nodes(topo, 0, 3);
  ProtocolConfig config = pin_config(7);
  config.mac.fading.enabled = true;
  config.flush_stale_frames = true;
  MoreProtocol protocol(topo, graph, config, MoreConfig{});
  const SessionResult result = protocol.run();
  expect_pinned(result, protocol.edge_innovative_deliveries(),
                Pin{464, 3965.0276179016255, 4360.3167827162251,
                    0.75172687389152903, 1.0, 1.0, 15198, 15575, 0,
                    {3599, 3045, 1422, 2291}});
}

}  // namespace
}  // namespace omnc::protocols

#include "routing/shortest_path.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace omnc::routing {
namespace {

TEST(ShortestPath, DijkstraSimpleChain) {
  // 0 -> 1 -> 2 with costs 1, 2; target 2.
  std::vector<GraphEdge> edges = {{0, 1, 1.0}, {1, 2, 2.0}};
  const ShortestPathTree tree = dijkstra_to_target(3, edges, 2);
  EXPECT_DOUBLE_EQ(tree.distance[0], 3.0);
  EXPECT_DOUBLE_EQ(tree.distance[1], 2.0);
  EXPECT_DOUBLE_EQ(tree.distance[2], 0.0);
  EXPECT_EQ(tree.next_hop[0], 1);
  EXPECT_EQ(tree.next_hop[1], 2);
  EXPECT_EQ(tree.next_hop[2], -1);
}

TEST(ShortestPath, PicksCheaperOfTwoRoutes) {
  // 0 -> 2 direct cost 5; 0 -> 1 -> 2 cost 2 + 2 = 4.
  std::vector<GraphEdge> edges = {{0, 2, 5.0}, {0, 1, 2.0}, {1, 2, 2.0}};
  const ShortestPathTree tree = dijkstra_to_target(3, edges, 2);
  EXPECT_DOUBLE_EQ(tree.distance[0], 4.0);
  EXPECT_EQ(tree.next_hop[0], 1);
}

TEST(ShortestPath, UnreachableNodes) {
  std::vector<GraphEdge> edges = {{0, 1, 1.0}};
  const ShortestPathTree tree = dijkstra_to_target(3, edges, 1);
  EXPECT_DOUBLE_EQ(tree.distance[0], 1.0);
  EXPECT_EQ(tree.distance[2], kUnreachable);
  EXPECT_EQ(tree.next_hop[2], -1);
  EXPECT_TRUE(extract_path(tree, 2, 1).empty());
}

TEST(ShortestPath, ExtractPathWalksToTarget) {
  std::vector<GraphEdge> edges = {{0, 1, 1.0}, {1, 2, 1.0}, {2, 3, 1.0}};
  const ShortestPathTree tree = dijkstra_to_target(4, edges, 3);
  const auto path = extract_path(tree, 0, 3);
  EXPECT_EQ(path, (std::vector<int>{0, 1, 2, 3}));
  const auto self = extract_path(tree, 3, 3);
  EXPECT_EQ(self, (std::vector<int>{3}));
}

TEST(ShortestPath, ZeroCostEdgesHandled) {
  std::vector<GraphEdge> edges = {{0, 1, 0.0}, {1, 2, 0.0}};
  const ShortestPathTree tree = dijkstra_to_target(3, edges, 2);
  EXPECT_DOUBLE_EQ(tree.distance[0], 0.0);
  const auto path = extract_path(tree, 0, 2);
  EXPECT_EQ(path.size(), 3u);
}

TEST(ShortestPath, BellmanFordMatchesDijkstraOnRandomGraphs) {
  Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = rng.uniform_int(4, 30);
    std::vector<GraphEdge> edges;
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        if (i != j && rng.chance(0.3)) {
          edges.push_back(GraphEdge{i, j, rng.uniform(0.1, 10.0)});
        }
      }
    }
    const int target = rng.uniform_int(0, n - 1);
    const ShortestPathTree d = dijkstra_to_target(n, edges, target);
    const ShortestPathTree bf = bellman_ford_to_target(n, edges, target);
    for (int v = 0; v < n; ++v) {
      if (d.distance[static_cast<std::size_t>(v)] == kUnreachable) {
        EXPECT_EQ(bf.distance[static_cast<std::size_t>(v)], kUnreachable);
      } else {
        EXPECT_NEAR(bf.distance[static_cast<std::size_t>(v)],
                    d.distance[static_cast<std::size_t>(v)], 1e-9);
      }
    }
  }
}

TEST(ShortestPath, BellmanFordReportsRounds) {
  // A chain of length k needs ~k relaxation rounds.
  std::vector<GraphEdge> edges;
  const int n = 10;
  for (int i = 0; i + 1 < n; ++i) edges.push_back(GraphEdge{i, i + 1, 1.0});
  const ShortestPathTree tree = bellman_ford_to_target(n, edges, n - 1);
  EXPECT_GE(tree.rounds, 2);
  EXPECT_LE(tree.rounds, n + 1);
  EXPECT_DOUBLE_EQ(tree.distance[0], static_cast<double>(n - 1));
}

TEST(ShortestPath, BellmanFordPathIsConsistentWithDistances) {
  Rng rng(23);
  std::vector<GraphEdge> edges;
  const int n = 15;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i != j && rng.chance(0.4)) {
        edges.push_back(GraphEdge{i, j, rng.uniform(0.5, 3.0)});
      }
    }
  }
  const ShortestPathTree tree = bellman_ford_to_target(n, edges, 0);
  for (int v = 1; v < n; ++v) {
    if (tree.distance[static_cast<std::size_t>(v)] == kUnreachable) continue;
    const auto path = extract_path(tree, v, 0);
    double cost = 0.0;
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      double best = kUnreachable;
      for (const auto& e : edges) {
        if (e.from == path[i] && e.to == path[i + 1]) {
          best = std::min(best, e.cost);
        }
      }
      ASSERT_NE(best, kUnreachable);
      cost += best;
    }
    EXPECT_NEAR(cost, tree.distance[static_cast<std::size_t>(v)], 1e-9);
  }
}

}  // namespace
}  // namespace omnc::routing

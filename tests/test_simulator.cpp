#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace omnc::sim {
namespace {

TEST(Simulator, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulator, SameTimeEventsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator sim;
  double fired_at = -1.0;
  sim.schedule_at(5.0, [&] {
    sim.schedule_in(2.5, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_at(1.0, [&] { fired = true; });
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.events_processed(), 0u);
}

TEST(Simulator, CancelUnknownIdIsNoOp) {
  Simulator sim;
  sim.cancel(9999);
  sim.schedule_at(1.0, [] {});
  sim.run();
  EXPECT_EQ(sim.events_processed(), 1u);
}

TEST(Simulator, RunUntilAdvancesClockExactly) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(2.0, [&] { ++fired; });
  sim.schedule_at(5.0, [&] { ++fired; });
  EXPECT_TRUE(sim.run_until(3.0));
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
  EXPECT_TRUE(sim.run_until(10.0));
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, StopExitsRunLoop) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule_at(2.0, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.stopped());
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 100) sim.schedule_in(0.1, chain);
  };
  sim.schedule_in(0.1, chain);
  sim.run();
  EXPECT_EQ(count, 100);
  EXPECT_NEAR(sim.now(), 10.0, 1e-9);
}

TEST(Simulator, PendingCount) {
  Simulator sim;
  const EventId a = sim.schedule_at(1.0, [] {});
  sim.schedule_at(2.0, [] {});
  EXPECT_EQ(sim.pending(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(Simulator, CancelAfterFireIsNoOp) {
  Simulator sim;
  int fired = 0;
  const EventId a = sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(2.0, [&] { ++fired; });
  EXPECT_TRUE(sim.run_until(1.5));
  EXPECT_EQ(fired, 1);
  // `a` already fired; cancelling it must not tombstone the live event.
  sim.cancel(a);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.events_processed(), 2u);
}

TEST(Simulator, RunUntilLeavesLaterEventsPending) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(4.0, [&] { ++fired; });
  sim.schedule_at(5.0, [&] { ++fired; });
  EXPECT_TRUE(sim.run_until(2.5));
  // The clock sits at exactly t even though the queue is non-empty.
  EXPECT_EQ(sim.now(), 2.5);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.pending(), 2u);
  // A second run_until picks up exactly where the first stopped.
  EXPECT_TRUE(sim.run_until(4.0));
  EXPECT_EQ(sim.now(), 4.0);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(Simulator, PendingConsistentAcrossLazyCancellation) {
  Simulator sim;
  int fired = 0;
  const EventId a = sim.schedule_at(1.0, [&] { ++fired; });
  const EventId b = sim.schedule_at(2.0, [&] { ++fired; });
  sim.schedule_at(3.0, [&] { ++fired; });
  EXPECT_EQ(sim.pending(), 3u);
  // Cancelled events stay in the heap as tombstones; pending() must net
  // them out, including after a repeated cancel of the same id.
  sim.cancel(a);
  sim.cancel(a);
  EXPECT_EQ(sim.pending(), 2u);
  sim.cancel(b);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.events_processed(), 1u);
  EXPECT_EQ(sim.pending(), 0u);
}

}  // namespace
}  // namespace omnc::sim

// Span-DAG reconstruction (obs/trace_inspect.h) over real emulation runs:
// on the Fig. 2 diamond — clean and under the chaos fault preset — every
// decoded generation's causal DAG must walk from the decode basis back to
// source-created roots, and two deterministic-clock runs of the same seed
// must emit identical span event streams (the --timeline acceptance gate).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "emu/emu_harness.h"
#include "emu/fault_transport.h"
#include "emu/loopback_transport.h"
#include "net/topology.h"
#include "obs/span.h"
#include "obs/trace_inspect.h"
#include "opt/rate_control.h"
#include "opt/sunicast.h"
#include "routing/node_selection.h"

namespace omnc::obs {
namespace {

net::Topology diamond() {
  std::vector<std::vector<double>> p(4, std::vector<double>(4, 0.0));
  p[0][1] = p[1][0] = 0.8;
  p[0][2] = p[2][0] = 0.6;
  p[1][3] = p[3][1] = 0.7;
  p[2][3] = p[3][2] = 0.9;
  return net::Topology::from_link_matrix(p);
}

/// One deterministic diamond run with the span sink attached; returns the
/// collected span stream.  `fault_preset` optionally wraps the transport.
std::vector<SpanEvent> run_spanned(std::uint64_t seed, int generations,
                                   const std::string& fault_preset) {
  const net::Topology topo = diamond();
  const routing::SessionGraph graph = routing::select_nodes(topo, 0, 3);
  opt::RateControlParams params;
  params.capacity = 2e4;
  opt::DistributedRateControl control(graph, params);
  const opt::RateControlResult rc = control.run();
  std::vector<double> rates = rc.b;
  opt::rescale_to_feasible(graph, rates, params.capacity);

  emu::LoopbackConfig loopback;
  loopback.seed = seed;
  emu::LoopbackTransport base(graph.size(),
                              emu::link_matrix_from_topology(topo, graph),
                              loopback);
  std::unique_ptr<emu::FaultTransport> faulty;
  emu::Transport* transport = &base;
  if (!fault_preset.empty()) {
    emu::FaultPlan plan;
    std::string error;
    EXPECT_TRUE(emu::FaultPlan::parse(fault_preset, &plan, &error)) << error;
    plan.seed = seed;
    faulty = std::make_unique<emu::FaultTransport>(base, plan);
    transport = faulty.get();
  }

  emu::EmuConfig config;
  config.node.coding.generation_blocks = 8;
  config.node.coding.block_bytes = 64;
  config.node.cbr_bytes_per_s = 1e4;
  config.node.max_generations = generations;
  config.node.data_seed = seed;
  config.node.rng_seed = seed;
  config.clock_mode = vtime::ClockMode::kDeterministic;
  config.speedup = 20.0;
  config.wall_timeout_s = 45.0;

  emu::EmuHarness harness(graph, *transport, config);
  harness.install_price_table(rates, rc.lambda, rc.beta, rc.iterations);
  std::vector<SpanEvent> spans;
  harness.set_span_sink(
      [&spans](const SpanEvent& event) { spans.push_back(event); });
  const emu::EmuRunResult result = harness.run();
  EXPECT_TRUE(result.completed);
  EXPECT_TRUE(result.data_ok);
  return spans;
}

TEST(SpanDag, DiamondDecodesWithSourceRootedDagEveryGeneration) {
  const int generations = 6;
  const std::vector<SpanEvent> spans = run_spanned(1, generations, "");
  ASSERT_FALSE(spans.empty());

  const std::vector<SpanDag> dags = build_span_dags(spans);
  const SpanDagCheck check = check_span_dags(dags);
  for (const std::string& problem : check.problems) {
    ADD_FAILURE() << problem;
  }
  EXPECT_TRUE(check.complete);
  EXPECT_EQ(check.decoded_generations,
            static_cast<std::size_t>(generations));

  // Source packets are roots (enqueued at node 0 with no parents); relay
  // recodes carry a non-empty basis.
  for (const SpanDag& dag : dags) {
    if (!dag.decoded) continue;
    EXPECT_FALSE(dag.decode_basis.empty());
    for (const SpanDag::Node& node : dag.nodes) {
      if (node.creator == 0) {
        EXPECT_TRUE(node.parents.empty())
            << "source packet with a recode basis";
      } else if (node.creator > 0) {
        EXPECT_FALSE(node.parents.empty())
            << "relay recode with no input basis";
      }
    }
  }
}

TEST(SpanDag, ChaosFaultPresetStillYieldsCompleteDags) {
  const std::vector<SpanEvent> spans = run_spanned(5, 6, "chaos");
  const SpanDagCheck check = check_span_dags(build_span_dags(spans));
  for (const std::string& problem : check.problems) {
    ADD_FAILURE() << problem;
  }
  EXPECT_TRUE(check.complete);
  EXPECT_EQ(check.decoded_generations, 6u);
}

TEST(SpanDag, DeterministicClockReplaysIdenticalSpanStreams) {
  const std::vector<SpanEvent> first = run_spanned(7, 5, "chaos");
  const std::vector<SpanEvent> second = run_spanned(7, 5, "chaos");
  const std::vector<SpanEvent> other = run_spanned(8, 5, "chaos");
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second) << "same-seed deterministic span streams diverged";
  EXPECT_NE(first, other) << "different seeds produced identical streams";
}

TEST(SpanDag, DetectsMissingEnqueueAndUnrootedChains) {
  // Hand-built stream: generation 0 decodes from a basis whose only parent
  // chain dead-ends in a span that was never enqueued.
  std::vector<SpanEvent> spans;
  SpanEvent enq;
  enq.kind = SpanEvent::Kind::kEnqueue;
  enq.node = 1;
  enq.span = {1, 1};
  enq.parents = {{9, 99}};  // never enqueued anywhere
  spans.push_back(enq);
  SpanEvent dec;
  dec.kind = SpanEvent::Kind::kDecode;
  dec.node = 3;
  dec.span = {1, 1};
  dec.parents = {{1, 1}};
  spans.push_back(dec);

  const SpanDagCheck check = check_span_dags(build_span_dags(spans));
  EXPECT_FALSE(check.complete);
  EXPECT_EQ(check.decoded_generations, 1u);
  ASSERT_EQ(check.problems.size(), 2u);
  EXPECT_NE(check.problems[0].find("no enqueue record"), std::string::npos);
  EXPECT_NE(check.problems[1].find("never reaches a source root"),
            std::string::npos);
}

TEST(SpanDag, EmptyDecodeBasisIsIncomplete) {
  std::vector<SpanEvent> spans;
  SpanEvent dec;
  dec.kind = SpanEvent::Kind::kDecode;
  dec.span = {1, 1};
  spans.push_back(dec);
  const SpanDagCheck check = check_span_dags(build_span_dags(spans));
  EXPECT_FALSE(check.complete);
  ASSERT_EQ(check.problems.size(), 1u);
  EXPECT_NE(check.problems[0].find("empty basis"), std::string::npos);
}

}  // namespace
}  // namespace omnc::obs

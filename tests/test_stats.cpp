#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace omnc {
namespace {

TEST(OnlineStats, Empty) {
  OnlineStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
}

TEST(OnlineStats, MatchesDirectComputation) {
  OnlineStats stats;
  const double values[] = {1.0, 2.0, 4.0, 8.0, 16.0};
  double sum = 0.0;
  for (double v : values) {
    stats.add(v);
    sum += v;
  }
  const double mean = sum / 5.0;
  double var = 0.0;
  for (double v : values) var += (v - mean) * (v - mean);
  var /= 4.0;
  EXPECT_DOUBLE_EQ(stats.mean(), mean);
  EXPECT_NEAR(stats.variance(), var, 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.max(), 16.0);
  EXPECT_DOUBLE_EQ(stats.sum(), sum);
}

TEST(OnlineStats, MergeEqualsSequential) {
  Rng rng(1);
  OnlineStats all;
  OnlineStats left;
  OnlineStats right;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-5, 5);
    all.add(v);
    (i % 2 == 0 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a;
  a.add(3.0);
  OnlineStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 3.0);
}

TEST(Cdf, AtAndQuantile) {
  Cdf cdf({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.at(10.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 4.0);
  EXPECT_DOUBLE_EQ(cdf.median(), 2.5);
}

TEST(Cdf, MeanMinMax) {
  Cdf cdf;
  cdf.add(5.0);
  cdf.add(1.0);
  cdf.add(3.0);
  EXPECT_DOUBLE_EQ(cdf.mean(), 3.0);
  EXPECT_DOUBLE_EQ(cdf.min(), 1.0);
  EXPECT_DOUBLE_EQ(cdf.max(), 5.0);
  EXPECT_EQ(cdf.count(), 3u);
}

TEST(Cdf, CurveIsMonotone) {
  Rng rng(2);
  Cdf cdf;
  for (int i = 0; i < 500; ++i) cdf.add(rng.normal());
  const auto points = cdf.curve(50);
  ASSERT_EQ(points.size(), 50u);
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_GE(points[i].second, points[i - 1].second);
    EXPECT_GT(points[i].first, points[i - 1].first);
  }
  EXPECT_DOUBLE_EQ(points.back().second, 1.0);
}

TEST(Cdf, SortedSamples) {
  Cdf cdf({3.0, 1.0, 2.0});
  const auto& sorted = cdf.sorted_samples();
  EXPECT_EQ(sorted, (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);    // bin 0
  h.add(9.99);   // bin 9
  h.add(-5.0);   // clamps to bin 0
  h.add(100.0);  // clamps to bin 9
  h.add(5.0);    // bin 5
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(9), 2u);
  EXPECT_EQ(h.bin_count(5), 1u);
  EXPECT_DOUBLE_EQ(h.bin_lo(5), 5.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(5), 6.0);
}

TEST(TimeAverage, PiecewiseConstantAverage) {
  TimeAverage avg;
  avg.advance_to(0.0, 0.0);  // start
  avg.advance_to(1.0, 2.0);  // value 2 over [0,1]
  avg.advance_to(3.0, 4.0);  // value 4 over [1,3]
  // average = (2*1 + 4*2) / 3
  EXPECT_NEAR(avg.average(), 10.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(avg.elapsed(), 3.0);
}

TEST(TimeAverage, NoSamplesIsZero) {
  TimeAverage avg;
  EXPECT_DOUBLE_EQ(avg.average(), 0.0);
  avg.advance_to(5.0, 10.0);
  EXPECT_DOUBLE_EQ(avg.average(), 0.0);  // zero elapsed time
}

}  // namespace
}  // namespace omnc

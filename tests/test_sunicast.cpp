#include "opt/sunicast.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "net/topology.h"
#include "routing/node_selection.h"

namespace omnc::opt {
namespace {

routing::SessionGraph diamond_graph() {
  std::vector<std::vector<double>> p(4, std::vector<double>(4, 0.0));
  p[0][1] = p[1][0] = 0.8;
  p[0][2] = p[2][0] = 0.6;
  p[1][3] = p[3][1] = 0.7;
  p[2][3] = p[3][2] = 0.9;
  const net::Topology topo = net::Topology::from_link_matrix(p);
  return routing::select_nodes(topo, 0, 3);
}

routing::SessionGraph chain_graph(double p01, double p12) {
  std::vector<std::vector<double>> p(3, std::vector<double>(3, 0.0));
  p[0][1] = p[1][0] = p01;
  p[1][2] = p[2][1] = p12;
  const net::Topology topo = net::Topology::from_link_matrix(p);
  return routing::select_nodes(topo, 0, 2);
}

TEST(SUnicast, ChainOptimumHandComputed) {
  // Chain S -a-> R -b-> T, capacity C.  Everyone hears everyone (3 nodes in
  // one neighborhood): receiver constraints force b_S + b_R <= C at both
  // receivers.  gamma = min(b_S * a, b_R * b) is maximized by
  // b_S * a = b_R * b with b_S + b_R = C:
  //   b_S = C * b / (a + b), gamma = C * a * b / (a + b).
  const double a = 0.8;
  const double b = 0.5;
  const double capacity = 1000.0;
  const routing::SessionGraph graph = chain_graph(a, b);
  ASSERT_EQ(graph.size(), 3);
  const SUnicastSolution solution = solve_sunicast(graph, capacity);
  ASSERT_TRUE(solution.feasible);
  EXPECT_NEAR(solution.gamma, capacity * a * b / (a + b), 1e-6);
}

TEST(SUnicast, DiamondOptimumMatchesKnownValue) {
  // Verified against the LP by hand-tuned balance (see scratch derivation):
  // relays split the channel with the source; gamma* = 65333.3 at C = 1e5.
  const routing::SessionGraph graph = diamond_graph();
  const SUnicastSolution solution = solve_sunicast(graph, 1e5);
  ASSERT_TRUE(solution.feasible);
  EXPECT_NEAR(solution.gamma, 65333.33, 1.0);
}

TEST(SUnicast, SolutionSatisfiesBroadcastConstraint) {
  const routing::SessionGraph graph = diamond_graph();
  const double capacity = 2e4;
  const SUnicastSolution solution = solve_sunicast(graph, capacity);
  ASSERT_TRUE(solution.feasible);
  EXPECT_LE(broadcast_load_factor(graph, solution.b, capacity), 1.0 + 1e-9);
}

TEST(SUnicast, SolutionSatisfiesLossConstraint) {
  const routing::SessionGraph graph = diamond_graph();
  const SUnicastSolution solution = solve_sunicast(graph, 1e4);
  ASSERT_TRUE(solution.feasible);
  for (std::size_t e = 0; e < graph.edges.size(); ++e) {
    const auto& edge = graph.edges[e];
    EXPECT_GE(solution.b[static_cast<std::size_t>(edge.from)] * edge.p,
              solution.x[e] - 1e-6);
  }
}

TEST(SUnicast, GammaScalesLinearlyWithCapacity) {
  const routing::SessionGraph graph = diamond_graph();
  const SUnicastSolution at1 = solve_sunicast(graph, 1e4);
  const SUnicastSolution at2 = solve_sunicast(graph, 2e4);
  ASSERT_TRUE(at1.feasible && at2.feasible);
  EXPECT_NEAR(at2.gamma, 2.0 * at1.gamma, 1e-5 * at2.gamma);
}

TEST(SUnicast, BetterLinksNeverReduceThroughput) {
  const routing::SessionGraph weak = chain_graph(0.4, 0.4);
  const routing::SessionGraph strong = chain_graph(0.8, 0.8);
  const SUnicastSolution sw = solve_sunicast(weak, 1e4);
  const SUnicastSolution ss = solve_sunicast(strong, 1e4);
  ASSERT_TRUE(sw.feasible && ss.feasible);
  EXPECT_GT(ss.gamma, sw.gamma);
}

TEST(SUnicast, LoadFactorAndRescale) {
  const routing::SessionGraph graph = diamond_graph();
  std::vector<double> rates(static_cast<std::size_t>(graph.size()), 1e4);
  const double load = broadcast_load_factor(graph, rates, 1e4);
  EXPECT_GT(load, 1.0);  // everyone at full capacity is infeasible
  std::vector<double> scaled = rates;
  const double scale = rescale_to_feasible(graph, scaled, 1e4);
  EXPECT_LT(scale, 1.0);
  EXPECT_NEAR(broadcast_load_factor(graph, scaled, 1e4), 1.0, 1e-9);
  // Already-feasible vectors are untouched.
  std::vector<double> small(static_cast<std::size_t>(graph.size()), 1.0);
  EXPECT_DOUBLE_EQ(rescale_to_feasible(graph, small, 1e4), 1.0);
}

TEST(SUnicast, RandomGraphsFeasibleAndBounded) {
  Rng rng(5);
  net::DeploymentConfig config;
  config.nodes = 100;
  const net::Topology topo = net::Topology::random_deployment(config, rng);
  int solved = 0;
  for (int trial = 0; trial < 40 && solved < 8; ++trial) {
    const net::NodeId src = rng.uniform_int(0, 99);
    const net::NodeId dst = rng.uniform_int(0, 99);
    if (src == dst) continue;
    const routing::SessionGraph graph = routing::select_nodes(topo, src, dst);
    if (graph.size() < 3 || graph.edges.empty()) continue;
    const SUnicastSolution solution = solve_sunicast(graph, 2e4);
    if (!solution.feasible) continue;
    ++solved;
    EXPECT_GT(solution.gamma, 0.0);
    EXPECT_LT(solution.gamma, 2e4);
    EXPECT_LE(broadcast_load_factor(graph, solution.b, 2e4), 1.0 + 1e-6);
  }
  EXPECT_GE(solved, 5);
}

}  // namespace
}  // namespace omnc::opt

#include "common/table.h"

#include <gtest/gtest.h>

namespace omnc {
namespace {

TEST(TextTable, RendersAlignedRows) {
  TextTable table({"proto", "gain"});
  table.add_row({"OMNC", "2.45"});
  table.add_row({"MORE", "1.67"});
  const std::string out = table.render();
  EXPECT_NE(out.find("proto"), std::string::npos);
  EXPECT_NE(out.find("OMNC"), std::string::npos);
  EXPECT_NE(out.find("2.45"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("|---"), std::string::npos);
}

TEST(TextTable, ShortRowsArePadded) {
  TextTable table({"a", "b", "c"});
  table.add_row({"only"});
  const std::string out = table.render();
  // Three columns rendered on every row: four pipes per line.
  const auto first_newline = out.find('\n');
  const std::string header = out.substr(0, first_newline);
  EXPECT_EQ(std::count(header.begin(), header.end(), '|'), 4);
}

TEST(TextTable, FmtPrecision) {
  EXPECT_EQ(TextTable::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(TextTable::fmt(2.0, 0), "2");
}

TEST(CdfChart, ContainsLegendAndAxis) {
  Cdf a({1.0, 2.0, 3.0});
  Cdf b({2.0, 4.0});
  const std::string chart = render_cdf_chart(
      {{"omnc", &a}, {"more", &b}}, 0.0, 5.0, 40, 10);
  EXPECT_NE(chart.find("legend"), std::string::npos);
  EXPECT_NE(chart.find("omnc"), std::string::npos);
  EXPECT_NE(chart.find("more"), std::string::npos);
  EXPECT_NE(chart.find("1.00 |"), std::string::npos);
}

TEST(CdfChart, EmptySeriesDoesNotCrash) {
  Cdf empty;
  const std::string chart =
      render_cdf_chart({{"empty", &empty}}, 0.0, 1.0, 20, 8);
  EXPECT_FALSE(chart.empty());
}

TEST(CdfData, EmitsRequestedPointCount) {
  Cdf a({0.0, 1.0});
  const std::string data = render_cdf_data({{"x", &a}}, 0.0, 1.0, 5);
  // Header plus 5 data rows.
  EXPECT_EQ(std::count(data.begin(), data.end(), '\n'), 6);
}

}  // namespace
}  // namespace omnc

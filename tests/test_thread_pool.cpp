#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace omnc {
namespace {

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForEachCoversRange) {
  ThreadPool pool(3);
  std::vector<int> hit(257, 0);
  pool.parallel_for_each(hit.size(), [&](std::size_t i) { hit[i] = 1; });
  EXPECT_EQ(std::accumulate(hit.begin(), hit.end(), 0), 257);
}

TEST(ThreadPool, ParallelForEachRethrowsFirstError) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for_each(10,
                             [](std::size_t i) {
                               if (i == 3) throw std::runtime_error("boom");
                             }),
      std::runtime_error);
  // The pool survives the failure and stays usable.
  std::atomic<int> counter{0};
  pool.parallel_for_each(5, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 5);
}

TEST(ThreadPool, SingleThreadPoolWorks) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);
  std::atomic<int> counter{0};
  pool.parallel_for_each(20, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not deadlock
  SUCCEED();
}

}  // namespace
}  // namespace omnc

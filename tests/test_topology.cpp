#include "net/topology.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace omnc::net {
namespace {

TEST(Topology, FromLinkMatrixBasics) {
  std::vector<std::vector<double>> p = {
      {0.0, 0.8, 0.0},
      {0.7, 0.0, 0.5},
      {0.0, 0.4, 0.0},
  };
  const Topology topo = Topology::from_link_matrix(p);
  EXPECT_EQ(topo.node_count(), 3);
  EXPECT_DOUBLE_EQ(topo.prob(0, 1), 0.8);
  EXPECT_DOUBLE_EQ(topo.prob(1, 0), 0.7);
  EXPECT_DOUBLE_EQ(topo.prob(0, 2), 0.0);
  EXPECT_EQ(topo.neighbors(0), (std::vector<NodeId>{1}));
  EXPECT_EQ(topo.neighbors(1), (std::vector<NodeId>{0, 2}));
  EXPECT_TRUE(topo.in_range(1, 2));
  EXPECT_FALSE(topo.in_range(0, 2));
}

TEST(Topology, LinkMatrixConflictsAreAudibilityBased) {
  // 0-1 linked, 1-2 linked, 0-2 not: 0 and 2 conflict only through a common
  // receiver, which is not part of the pairwise (audibility) conflict; the
  // MAC resolves that case via collisions instead.
  std::vector<std::vector<double>> p = {
      {0.0, 0.8, 0.0},
      {0.8, 0.0, 0.8},
      {0.0, 0.8, 0.0},
  };
  const Topology topo = Topology::from_link_matrix(p);
  EXPECT_TRUE(topo.conflicts(0, 1));
  EXPECT_TRUE(topo.conflicts(1, 2));
  EXPECT_TRUE(topo.conflicts(0, 2));  // common receiver 1
  EXPECT_TRUE(topo.interferes(0, 1));
  EXPECT_FALSE(topo.interferes(0, 2));
}

TEST(Topology, RandomDeploymentDensityCalibration) {
  DeploymentConfig config;
  config.nodes = 300;
  config.density = 6.0;
  Rng rng(7);
  const Topology topo = Topology::random_deployment(config, rng);
  EXPECT_EQ(topo.node_count(), 300);
  // Expected ~5 neighbors; boundary effects shave some off.
  EXPECT_GT(topo.mean_neighbor_count(), 3.5);
  EXPECT_LT(topo.mean_neighbor_count(), 6.5);
}

TEST(Topology, LossyDeploymentMeanLinkQualityNearPaper) {
  DeploymentConfig config;
  Rng rng(42);
  const Topology topo = Topology::random_deployment(config, rng);
  // The paper's lossy operating point: mean reception probability ~0.58.
  EXPECT_NEAR(topo.mean_link_probability(), 0.58, 0.05);
}

TEST(Topology, PowerBoostRaisesLinkQualityAndInterference) {
  DeploymentConfig lossy;
  DeploymentConfig strong;
  strong.power_factor = 2.0;
  Rng rng1(3);
  Rng rng2(3);
  const Topology a = Topology::random_deployment(lossy, rng1);
  const Topology b = Topology::random_deployment(strong, rng2);
  EXPECT_GT(b.mean_link_probability(), a.mean_link_probability() + 0.15);
  EXPECT_GT(b.interference_range(), a.interference_range());
  // Same node count and link structure (same seed, same positions).
  EXPECT_EQ(a.link_count(), b.link_count());
}

TEST(Topology, LinksOnlyWithinRange) {
  DeploymentConfig config;
  config.nodes = 50;
  Rng rng(11);
  const Topology topo = Topology::random_deployment(config, rng);
  for (NodeId i = 0; i < topo.node_count(); ++i) {
    for (NodeId j : topo.neighbors(i)) {
      EXPECT_LE(topo.distance(i, j), config.range_m + 1e-9);
      EXPECT_GT(topo.prob(i, j), 0.0);
    }
  }
}

TEST(Topology, InterferenceSupersetOfLinks) {
  DeploymentConfig config;
  config.nodes = 60;
  config.power_factor = 1.5;
  Rng rng(13);
  const Topology topo = Topology::random_deployment(config, rng);
  for (NodeId i = 0; i < topo.node_count(); ++i) {
    for (NodeId j : topo.neighbors(i)) {
      EXPECT_TRUE(topo.interferes(i, j));
    }
    EXPECT_GE(topo.interference_neighbors(i).size(),
              topo.neighbors(i).size());
  }
}

TEST(Topology, DistanceIsSymmetricAndPositive) {
  DeploymentConfig config;
  config.nodes = 20;
  Rng rng(5);
  const Topology topo = Topology::random_deployment(config, rng);
  for (NodeId i = 0; i < topo.node_count(); ++i) {
    EXPECT_DOUBLE_EQ(topo.distance(i, i), 0.0);
    for (NodeId j = 0; j < topo.node_count(); ++j) {
      EXPECT_DOUBLE_EQ(topo.distance(i, j), topo.distance(j, i));
    }
  }
}

TEST(Topology, DeterministicForSeed) {
  DeploymentConfig config;
  config.nodes = 40;
  Rng rng1(77);
  Rng rng2(77);
  const Topology a = Topology::random_deployment(config, rng1);
  const Topology b = Topology::random_deployment(config, rng2);
  EXPECT_EQ(a.link_count(), b.link_count());
  for (NodeId i = 0; i < a.node_count(); ++i) {
    for (NodeId j = 0; j < a.node_count(); ++j) {
      EXPECT_DOUBLE_EQ(a.prob(i, j), b.prob(i, j));
    }
  }
}

TEST(Topology, ShadowingCreatesAsymmetricLinks) {
  DeploymentConfig config;
  config.nodes = 100;
  Rng rng(21);
  const Topology topo = Topology::random_deployment(config, rng);
  int asymmetric = 0;
  int links = 0;
  for (NodeId i = 0; i < topo.node_count(); ++i) {
    for (NodeId j : topo.neighbors(i)) {
      if (i < j && topo.prob(j, i) > 0.0) {
        ++links;
        if (std::abs(topo.prob(i, j) - topo.prob(j, i)) > 0.01) ++asymmetric;
      }
    }
  }
  ASSERT_GT(links, 0);
  EXPECT_GT(asymmetric, links / 2);  // per-direction jitter is independent
}

}  // namespace
}  // namespace omnc::net

// Finite-length generation tuner (codes/tuner.h): the exact full-rank and
// loss-convolution model, its monotonicity, and the efficiency-maximizing
// sweep that feeds omnc_emu --auto-tune.
#include "codes/tuner.h"

#include <gtest/gtest.h>

#include <cmath>

namespace omnc::codes {
namespace {

TEST(Tuner, FullRankProbMatchesClosedForm) {
  // r == g: prod_{k=1}^{g} (1 - 256^-k).
  for (const int g : {1, 2, 8, 40}) {
    double expected = 1.0;
    for (int k = 1; k <= g; ++k) expected *= 1.0 - std::pow(256.0, -k);
    EXPECT_NEAR(dense_full_rank_prob(g, g), expected, 1e-12) << "g=" << g;
  }
  // One excess row multiplies every term's exponent by 256.
  EXPECT_GT(dense_full_rank_prob(8, 9), dense_full_rank_prob(8, 8));
  EXPECT_NEAR(dense_full_rank_prob(8, 16), 1.0, 1e-9);
  // Fewer rows than dimensions can never be full rank.
  EXPECT_EQ(dense_full_rank_prob(8, 7), 0.0);
}

TEST(Tuner, DecodeSuccessProbIsMonotone) {
  // More packets help; more loss hurts; the lossless case reduces to the
  // pure rank-deficiency model.
  EXPECT_NEAR(decode_success_prob(16, 20, 0.0), dense_full_rank_prob(16, 20),
              1e-12);
  double last = 0.0;
  for (int sent = 16; sent <= 40; ++sent) {
    const double p = decode_success_prob(16, sent, 0.3);
    EXPECT_GE(p, last);
    last = p;
  }
  EXPECT_GT(decode_success_prob(16, 30, 0.1),
            decode_success_prob(16, 30, 0.5));
}

TEST(Tuner, SweepMeetsTargetAndScalesRedundancyWithLoss) {
  const double target = 0.99;
  const TunerChoice clean = tune_generation(0.0, target, 8, 64, 1024);
  const TunerChoice lossy = tune_generation(0.4, target, 8, 64, 1024);
  for (const TunerChoice& choice : {clean, lossy}) {
    EXPECT_GE(choice.success_prob, target);
    EXPECT_GE(choice.generation_blocks, 8);
    EXPECT_LE(choice.generation_blocks, 64);
    // Candidates are powers of two.
    EXPECT_EQ(choice.generation_blocks & (choice.generation_blocks - 1), 0);
    EXPECT_GE(choice.send_count, choice.generation_blocks);
    EXPECT_NEAR(choice.redundancy,
                static_cast<double>(choice.send_count) /
                    choice.generation_blocks,
                1e-12);
    EXPECT_GT(choice.efficiency, 0.0);
    EXPECT_LE(choice.efficiency, 1.0);
  }
  // Lossless needs barely more than g packets; 40% loss needs ~1/(1-p) more.
  EXPECT_LT(clean.redundancy, 1.2);
  EXPECT_GT(lossy.redundancy, 1.5);
  // The achieved send count is minimal: one fewer packet misses the target.
  EXPECT_LT(decode_success_prob(lossy.generation_blocks, lossy.send_count - 1,
                                0.4),
            target);
}

TEST(Tuner, LargerBlocksFavorLargerGenerations) {
  // With big payloads the per-packet coefficient overhead (g bytes) is
  // negligible, so larger generations win on rank-deficiency amortization;
  // with tiny payloads the g-byte header dominates and small g wins.
  const TunerChoice big = tune_generation(0.2, 0.99, 8, 128, 4096);
  const TunerChoice small = tune_generation(0.2, 0.99, 8, 128, 16);
  EXPECT_GE(big.generation_blocks, small.generation_blocks);
  EXPECT_GT(big.efficiency, small.efficiency);
}

}  // namespace
}  // namespace omnc::codes

// Wire-frame layer: byte-exact round trips for every frame type, and
// hardened-parser negatives — truncation, corruption, hostile length fields,
// and random garbage must all return false without undefined behaviour
// (the fuzz-style cases run under ASan/UBSan in CI).  Includes the
// CodedPacket::parse audit the frame layer builds on.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "coding/coded_packet.h"
#include "common/rng.h"
#include "wire/frame.h"

namespace omnc {
namespace {

coding::CodedPacket sample_packet() {
  coding::CodedPacket packet;
  packet.session_id = 7;
  packet.generation_id = 3;
  packet.generation_blocks = 4;
  packet.block_bytes = 8;
  packet.coefficients = {1, 2, 3, 4};
  packet.payload = {10, 20, 30, 40, 50, 60, 70, 80};
  return packet;
}

/// serialize -> parse -> serialize must reproduce the bytes exactly.
void expect_byte_exact_roundtrip(const wire::Frame& frame) {
  const std::vector<std::uint8_t> bytes = frame.serialize();
  wire::Frame parsed;
  ASSERT_TRUE(wire::Frame::parse(bytes, &parsed));
  EXPECT_EQ(parsed.type, frame.type);
  EXPECT_EQ(parsed.session_id, frame.session_id);
  EXPECT_EQ(parsed.serialize(), bytes);
}

TEST(WireFrame, CodedDataRoundTrip) {
  const wire::Frame frame = wire::make_coded_data(sample_packet());
  expect_byte_exact_roundtrip(frame);
  const std::vector<std::uint8_t> bytes = frame.serialize();
  wire::Frame parsed;
  ASSERT_TRUE(wire::Frame::parse(bytes, &parsed));
  EXPECT_EQ(parsed.packet.serialize(), sample_packet().serialize());
}

TEST(WireFrame, AckRoundTrip) {
  const wire::GenerationAck ack{42, 3, 17};
  expect_byte_exact_roundtrip(wire::make_ack(9, ack));
  wire::Frame parsed;
  ASSERT_TRUE(wire::Frame::parse(wire::make_ack(9, ack).serialize(), &parsed));
  EXPECT_EQ(parsed.ack, ack);
}

TEST(WireFrame, BeaconRoundTrip) {
  const wire::ProbeBeacon beacon{2, 1234};
  expect_byte_exact_roundtrip(wire::make_beacon(9, beacon));
  wire::Frame parsed;
  ASSERT_TRUE(
      wire::Frame::parse(wire::make_beacon(9, beacon).serialize(), &parsed));
  EXPECT_EQ(parsed.beacon, beacon);
}

TEST(WireFrame, ReportRoundTrip) {
  const wire::ProbeReport report{1, 2, 37, 50};
  expect_byte_exact_roundtrip(wire::make_report(9, report));
  wire::Frame parsed;
  ASSERT_TRUE(
      wire::Frame::parse(wire::make_report(9, report).serialize(), &parsed));
  EXPECT_EQ(parsed.report, report);
  EXPECT_DOUBLE_EQ(parsed.report.estimate(), 37.0 / 50.0);
}

TEST(WireFrame, PriceRoundTripBitExactDoubles) {
  wire::PriceUpdate price;
  price.node_local = 2;
  price.iteration = 91;
  price.beta = 0.12345678901234567;    // needs all 53 mantissa bits
  price.rate_bytes_per_s = 9876.54321;
  price.lambdas = {{1, 1.0 / 3.0}, {3, 7.25e-9}};
  expect_byte_exact_roundtrip(wire::make_price(9, price));
  wire::Frame parsed;
  ASSERT_TRUE(
      wire::Frame::parse(wire::make_price(9, price).serialize(), &parsed));
  EXPECT_EQ(parsed.price, price);  // bit-exact double comparison
}

TEST(WireFrame, PriceRoundTripEmptyLambdas) {
  wire::PriceUpdate price;
  price.node_local = 0;
  price.rate_bytes_per_s = 1.0;
  expect_byte_exact_roundtrip(wire::make_price(1, price));
}

TEST(WireFrame, ResyncRequestRoundTrip) {
  const wire::ResyncRequest request{3, 41};
  expect_byte_exact_roundtrip(wire::make_resync_request(9, request));
  wire::Frame parsed;
  ASSERT_TRUE(wire::Frame::parse(
      wire::make_resync_request(9, request).serialize(), &parsed));
  EXPECT_EQ(parsed.resync_request, request);
}

TEST(WireFrame, ResyncInfoRoundTrip) {
  const wire::ResyncInfo info{17, 250};
  expect_byte_exact_roundtrip(wire::make_resync_info(9, info));
  wire::Frame parsed;
  ASSERT_TRUE(
      wire::Frame::parse(wire::make_resync_info(9, info).serialize(), &parsed));
  EXPECT_EQ(parsed.resync_info, info);
}

TEST(WireFrame, PeeksMatchFullParse) {
  const std::vector<std::uint8_t> bytes =
      wire::make_ack(1234, wire::GenerationAck{1, 0, 0}).serialize();
  wire::FrameType type;
  std::uint32_t session = 0;
  ASSERT_TRUE(wire::peek_type(bytes, &type));
  ASSERT_TRUE(wire::peek_session(bytes, &session));
  EXPECT_EQ(type, wire::FrameType::kGenerationAck);
  EXPECT_EQ(session, 1234u);
}

TEST(WireFrame, TraceTagRoundTripAndPeek) {
  wire::Frame frame = wire::make_coded_data(sample_packet());
  frame.trace_origin = 3;
  frame.trace_seq = 41;
  const std::vector<std::uint8_t> bytes = frame.serialize();
  wire::Frame parsed;
  ASSERT_TRUE(wire::Frame::parse(bytes, &parsed));
  EXPECT_EQ(parsed.trace_origin, 3);
  EXPECT_EQ(parsed.trace_seq, 41u);
  EXPECT_EQ(parsed.serialize(), bytes);

  std::uint16_t origin = 0;
  std::uint32_t seq = 0;
  ASSERT_TRUE(wire::peek_trace(bytes, &origin, &seq));
  EXPECT_EQ(origin, 3);
  EXPECT_EQ(seq, 41u);
  std::uint32_t generation = 0;
  ASSERT_TRUE(wire::peek_generation(bytes, &generation));
  EXPECT_EQ(generation, sample_packet().generation_id);
  // Control frames carry no coded-data payload to peek a generation from.
  EXPECT_FALSE(wire::peek_generation(
      wire::make_ack(1, wire::GenerationAck{}).serialize(), &generation));
}

TEST(WireFrame, ParsesVersion1FramesAsUntraced) {
  // A hand-built v1 frame (18-byte header, checksum over the payload only,
  // no trace tag) must still parse — older peers stay interoperable — and
  // surface the null span id.
  const wire::GenerationAck ack{42, 3, 17};
  std::vector<std::uint8_t> body;
  auto put_u16 = [&body](std::uint16_t v) {
    body.push_back(static_cast<std::uint8_t>(v >> 8));
    body.push_back(static_cast<std::uint8_t>(v));
  };
  auto put_u32 = [&body](std::uint32_t v) {
    for (int shift = 24; shift >= 0; shift -= 8) {
      body.push_back(static_cast<std::uint8_t>(v >> shift));
    }
  };
  put_u32(ack.generation_id);
  put_u16(ack.origin_local);
  put_u32(ack.ack_seq);

  std::vector<std::uint8_t> bytes;
  auto put_hdr_u32 = [&bytes](std::uint32_t v) {
    for (int shift = 24; shift >= 0; shift -= 8) {
      bytes.push_back(static_cast<std::uint8_t>(v >> shift));
    }
  };
  put_hdr_u32(0x4F4D4E43);  // magic "OMNC"
  bytes.push_back(wire::kWireVersionV1);
  bytes.push_back(static_cast<std::uint8_t>(wire::FrameType::kGenerationAck));
  put_hdr_u32(9);  // session id
  put_hdr_u32(static_cast<std::uint32_t>(body.size()));
  put_hdr_u32(wire::fnv1a(body));
  bytes.insert(bytes.end(), body.begin(), body.end());
  ASSERT_EQ(bytes.size(), wire::kHeaderBytesV1 + body.size());

  wire::Frame parsed;
  ASSERT_TRUE(wire::Frame::parse(bytes, &parsed));
  EXPECT_EQ(parsed.type, wire::FrameType::kGenerationAck);
  EXPECT_EQ(parsed.session_id, 9u);
  EXPECT_EQ(parsed.ack, ack);
  EXPECT_EQ(parsed.trace_origin, 0);
  EXPECT_EQ(parsed.trace_seq, 0u);

  // Corrupting a v1 payload byte must still be caught by its checksum.
  std::vector<std::uint8_t> corrupted = bytes;
  corrupted[wire::kHeaderBytesV1] ^= 0x5a;
  EXPECT_FALSE(wire::Frame::parse(corrupted, &parsed));
}

// ---- hostile inputs ------------------------------------------------------

TEST(WireFrameHostile, RejectsEmptyAndShortBuffers) {
  wire::Frame out;
  EXPECT_FALSE(wire::Frame::parse({}, &out));
  const std::vector<std::uint8_t> bytes =
      wire::make_beacon(1, wire::ProbeBeacon{0, 1}).serialize();
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(wire::Frame::parse(
        std::span<const std::uint8_t>(bytes.data(), len), &out))
        << "accepted a " << len << "-byte truncation";
  }
}

TEST(WireFrameHostile, RejectsTrailingBytes) {
  std::vector<std::uint8_t> bytes =
      wire::make_beacon(1, wire::ProbeBeacon{0, 1}).serialize();
  bytes.push_back(0);
  wire::Frame out;
  EXPECT_FALSE(wire::Frame::parse(bytes, &out));
}

TEST(WireFrameHostile, RejectsBadMagicVersionAndType) {
  const std::vector<std::uint8_t> good =
      wire::make_ack(1, wire::GenerationAck{}).serialize();
  wire::Frame out;
  auto mutate = [&](std::size_t at, std::uint8_t value) {
    std::vector<std::uint8_t> bytes = good;
    bytes[at] = value;
    return wire::Frame::parse(bytes, &out);
  };
  EXPECT_FALSE(mutate(0, 0x00));  // magic
  EXPECT_FALSE(mutate(4, 0x00));  // version below range
  EXPECT_FALSE(mutate(4, 0x03));  // unknown future version
  EXPECT_FALSE(mutate(5, 0x00));  // type below range
  EXPECT_FALSE(mutate(5, 0x08));  // type above range (7 = kResyncInfo is top)
  EXPECT_FALSE(mutate(5, 0xff));
  // 0x06/0x07 are valid types now, but the ACK body size does not fit them.
  EXPECT_FALSE(mutate(5, 0x06));
  EXPECT_FALSE(mutate(5, 0x07));
}

TEST(WireFrameHostile, RejectsEveryCorruptedByte) {
  // Any single-byte corruption must be caught: header fields by their own
  // validation, payload bytes by the FNV-1a checksum.
  const std::vector<std::uint8_t> good =
      wire::make_price(3, wire::PriceUpdate{1, 2, 0.5, 100.0, {{2, 0.25}}})
          .serialize();
  wire::Frame out;
  for (std::size_t at = 0; at < good.size(); ++at) {
    std::vector<std::uint8_t> bytes = good;
    bytes[at] ^= 0x5a;
    // A session-id flip still parses structurally (the checksum covers only
    // the payload), but then it is a *different*, internally consistent
    // frame; every other position must be rejected.
    if (at >= 6 && at < 10) continue;
    EXPECT_FALSE(wire::Frame::parse(bytes, &out))
        << "accepted corruption at byte " << at;
  }
}

TEST(WireFrameHostile, RejectsHostileLengthFields) {
  std::vector<std::uint8_t> bytes =
      wire::make_ack(1, wire::GenerationAck{}).serialize();
  wire::Frame out;
  // Claim a ~4 GiB payload: must be rejected by the kMaxFrameBytes bound
  // before any arithmetic, not by an allocation or overflow downstream.
  bytes[10] = 0xff;
  bytes[11] = 0xff;
  bytes[12] = 0xff;
  bytes[13] = 0xff;
  EXPECT_FALSE(wire::Frame::parse(bytes, &out));
  // Claim slightly more / fewer bytes than present.
  for (const std::uint8_t claimed : {0x0b, 0x09, 0x00}) {
    std::vector<std::uint8_t> copy =
        wire::make_ack(1, wire::GenerationAck{}).serialize();
    copy[13] = claimed;  // true payload is 10 bytes
    EXPECT_FALSE(wire::Frame::parse(copy, &out));
  }
}

TEST(WireFrameHostile, RejectsResyncTruncationAndTrailingBytes) {
  const std::vector<std::vector<std::uint8_t>> frames = {
      wire::make_resync_request(1, wire::ResyncRequest{2, 9}).serialize(),
      wire::make_resync_info(1, wire::ResyncInfo{9, 4}).serialize(),
  };
  wire::Frame out;
  for (const auto& good : frames) {
    for (std::size_t len = 0; len < good.size(); ++len) {
      EXPECT_FALSE(wire::Frame::parse(
          std::span<const std::uint8_t>(good.data(), len), &out));
    }
    std::vector<std::uint8_t> padded = good;
    padded.push_back(0);
    EXPECT_FALSE(wire::Frame::parse(padded, &out));
  }
}

TEST(WireFrameHostile, RejectsPriceCountMismatch) {
  wire::PriceUpdate price;
  price.lambdas = {{1, 0.5}, {2, 0.25}};
  std::vector<std::uint8_t> bytes = wire::make_price(1, price).serialize();
  // Bump the claimed lambda count without providing the entries; the exact
  // per-type size check must reject it (checksum fixed up to isolate the
  // body validation).
  const std::size_t count_at = wire::kHeaderBytes + 22;
  bytes[count_at + 1] = 3;
  // The v2 checksum covers the trace tag and the payload.
  const std::uint32_t checksum = wire::fnv1a(
      std::span<const std::uint8_t>(bytes).subspan(wire::kTraceTagOffset));
  bytes[14] = static_cast<std::uint8_t>(checksum >> 24);
  bytes[15] = static_cast<std::uint8_t>(checksum >> 16);
  bytes[16] = static_cast<std::uint8_t>(checksum >> 8);
  bytes[17] = static_cast<std::uint8_t>(checksum);
  wire::Frame out;
  EXPECT_FALSE(wire::Frame::parse(bytes, &out));
}

TEST(WireFrameHostile, RejectsSessionIdDisagreement) {
  // A coded-data frame whose embedded packet header names a different
  // session than the frame header was corrupted or forged.
  coding::CodedPacket packet = sample_packet();
  wire::Frame frame = wire::make_coded_data(packet);
  frame.session_id = packet.session_id + 1;
  const std::vector<std::uint8_t> bytes = frame.serialize();
  wire::Frame out;
  EXPECT_FALSE(wire::Frame::parse(bytes, &out));
}

// ---- Demux audit ---------------------------------------------------------
// The session mux routes frames by peek_session / peek_data_session before
// any runtime sees them; these pin the exact rejection behaviour a
// demultiplexer relies on (DESIGN.md §16).

TEST(WireFrameDemux, PeekDataSessionReadsEmbeddedId) {
  const wire::Frame frame = wire::make_coded_data(sample_packet());
  const std::vector<std::uint8_t> bytes = frame.serialize();
  std::uint32_t header_session = 0;
  std::uint32_t embedded_session = 0;
  ASSERT_TRUE(wire::peek_session(bytes, &header_session));
  ASSERT_TRUE(wire::peek_data_session(bytes, &embedded_session));
  EXPECT_EQ(header_session, sample_packet().session_id);
  EXPECT_EQ(embedded_session, sample_packet().session_id);
}

TEST(WireFrameDemux, PeekDataSessionRejectsControlFrames) {
  const wire::Frame frame = wire::make_ack(7, wire::GenerationAck{1, 3, 2});
  std::uint32_t session = 0;
  EXPECT_FALSE(wire::peek_data_session(frame.serialize(), &session));
}

TEST(WireFrameDemux, PeeksRejectEveryTruncation) {
  // A truncated datagram must never demux anywhere: both peeks refuse every
  // strict prefix (the length field disagrees with the buffer).
  const std::vector<std::uint8_t> good =
      wire::make_coded_data(sample_packet()).serialize();
  for (std::size_t len = 0; len < good.size(); ++len) {
    const std::span<const std::uint8_t> cut(good.data(), len);
    std::uint32_t session = 0;
    EXPECT_FALSE(wire::peek_session(cut, &session)) << "len " << len;
    EXPECT_FALSE(wire::peek_data_session(cut, &session)) << "len " << len;
  }
}

TEST(WireFrameDemux, EmbeddedDisagreementIsVisibleBeforeParse) {
  // A forged frame whose header names session 8 but whose embedded coded
  // packet says 7: the full parse rejects it, and the cheap peeks expose the
  // disagreement so a demux can count it against neither session's runtime.
  coding::CodedPacket packet = sample_packet();
  wire::Frame frame = wire::make_coded_data(packet);
  frame.session_id = packet.session_id + 1;
  const std::vector<std::uint8_t> bytes = frame.serialize();
  wire::Frame parsed;
  EXPECT_FALSE(wire::Frame::parse(bytes, &parsed));
  std::uint32_t header_session = 0;
  std::uint32_t embedded_session = 0;
  ASSERT_TRUE(wire::peek_session(bytes, &header_session));
  ASSERT_TRUE(wire::peek_data_session(bytes, &embedded_session));
  EXPECT_EQ(header_session, packet.session_id + 1);
  EXPECT_EQ(embedded_session, packet.session_id);
  EXPECT_NE(header_session, embedded_session);
}

TEST(WireFrameDemux, PeekDataSessionRejectsShortBody) {
  // A data frame whose payload is too short to hold even the CodedPacket
  // session+generation ids: rebuild the header by hand so magic/version/
  // length are self-consistent and only the body is hostile.
  std::vector<std::uint8_t> bytes =
      wire::make_coded_data(sample_packet()).serialize();
  const std::size_t short_payload = 7;  // < 8-byte packet-header prefix
  bytes.resize(wire::kHeaderBytes + short_payload);
  bytes[10] = 0;
  bytes[11] = 0;
  bytes[12] = 0;
  bytes[13] = static_cast<std::uint8_t>(short_payload);
  std::uint32_t session = 0;
  EXPECT_TRUE(wire::peek_session(bytes, &session));  // header is intact
  EXPECT_FALSE(wire::peek_data_session(bytes, &session));
}

TEST(WireFrameDemux, PeekFuzzNeverCrashes) {
  Rng rng(0x5e55u);
  const std::vector<std::uint8_t> seed =
      wire::make_coded_data(sample_packet()).serialize();
  std::uint32_t session = 0;
  std::size_t garbage_accepted = 0;
  for (int trial = 0; trial < 5000; ++trial) {
    std::vector<std::uint8_t> bytes;
    if (rng.chance(0.5)) {
      bytes.assign(seed.begin(), seed.end());
      const int flips = 1 + static_cast<int>(rng.next_below(4));
      for (int f = 0; f < flips; ++f) {
        bytes[rng.next_below(bytes.size())] = rng.next_byte();
      }
      if (rng.chance(0.3)) bytes.resize(rng.next_below(bytes.size() + 1));
    } else {
      bytes.resize(rng.next_below(96));
      for (auto& b : bytes) b = rng.next_byte();
      if (wire::peek_data_session(bytes, &session)) ++garbage_accepted;
    }
    (void)wire::peek_session(bytes, &session);
    (void)wire::peek_data_session(bytes, &session);
  }
  // Pure garbage passing magic+version+type+length is astronomically rare.
  EXPECT_EQ(garbage_accepted, 0u);
}

TEST(WireFrameHostile, SurvivesRandomGarbage) {
  Rng rng(0xfeedu);
  wire::Frame out;
  std::size_t accepted = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<std::uint8_t> bytes(rng.next_below(256));
    for (auto& b : bytes) b = rng.next_byte();
    if (wire::Frame::parse(bytes, &out)) ++accepted;
  }
  // Random garbage passing magic + version + type + length + checksum is
  // astronomically unlikely.
  EXPECT_EQ(accepted, 0u);
}

TEST(WireFrameHostile, SurvivesMutatedValidFrames) {
  // Fuzz around the valid corner: random byte mutations of real frames must
  // parse cleanly or fail cleanly — never crash (ASan/UBSan enforce).
  Rng rng(0xabcdu);
  const std::vector<std::vector<std::uint8_t>> seeds = {
      wire::make_coded_data(sample_packet()).serialize(),
      wire::make_ack(7, wire::GenerationAck{1, 3, 2}).serialize(),
      wire::make_price(7, wire::PriceUpdate{0, 1, 0.5, 2e4, {{1, 0.1}}})
          .serialize(),
  };
  wire::Frame out;
  for (int trial = 0; trial < 5000; ++trial) {
    std::vector<std::uint8_t> bytes =
        seeds[rng.next_below(seeds.size())];
    const int flips = 1 + static_cast<int>(rng.next_below(4));
    for (int f = 0; f < flips; ++f) {
      bytes[rng.next_below(bytes.size())] = rng.next_byte();
    }
    if (rng.chance(0.3) && !bytes.empty()) {
      bytes.resize(rng.next_below(bytes.size() + 1));  // random truncation
    }
    (void)wire::Frame::parse(bytes, &out);
  }
}

// ---- CodedPacket::parse audit -------------------------------------------

TEST(CodedPacketAudit, RejectsZeroGeometry) {
  // n == 0 or m == 0 with a consistent length must fail before any
  // coefficient/payload slicing.
  std::vector<std::uint8_t> wire_bytes(coding::CodedPacket::kHeaderBytes, 0);
  coding::CodedPacket out;
  EXPECT_FALSE(coding::CodedPacket::parse(wire_bytes, &out));  // n = m = 0
  wire_bytes[9] = 4;  // n = 4, m = 0, 4 coefficient bytes appended
  wire_bytes.resize(coding::CodedPacket::kHeaderBytes + 4, 0);
  EXPECT_FALSE(coding::CodedPacket::parse(wire_bytes, &out));
  std::vector<std::uint8_t> m_only(coding::CodedPacket::kHeaderBytes + 8, 0);
  m_only[11] = 8;  // n = 0, m = 8
  EXPECT_FALSE(coding::CodedPacket::parse(m_only, &out));
}

TEST(CodedPacketAudit, RejectsMaxLengthFieldsWithoutOverflow) {
  // n = m = 0xffff claims 12 + 65535 + 65535 bytes; the size_t arithmetic
  // must not wrap and the short buffer must be rejected.
  std::vector<std::uint8_t> wire_bytes(coding::CodedPacket::kHeaderBytes, 0);
  wire_bytes[8] = wire_bytes[9] = wire_bytes[10] = wire_bytes[11] = 0xff;
  coding::CodedPacket out;
  EXPECT_FALSE(coding::CodedPacket::parse(wire_bytes, &out));
}

TEST(CodedPacketAudit, RejectsEveryTruncation) {
  const std::vector<std::uint8_t> good = sample_packet().serialize();
  coding::CodedPacket out;
  for (std::size_t len = 0; len < good.size(); ++len) {
    EXPECT_FALSE(coding::CodedPacket::parse(
        std::span<const std::uint8_t>(good.data(), len), &out));
  }
  EXPECT_TRUE(coding::CodedPacket::parse(good, &out));
}

TEST(CodedPacketAudit, RejectsLengthFieldDisagreement) {
  std::vector<std::uint8_t> bytes = sample_packet().serialize();
  coding::CodedPacket out;
  bytes[9] += 1;  // claims one more coefficient than the buffer holds
  EXPECT_FALSE(coding::CodedPacket::parse(bytes, &out));
  bytes[9] -= 2;  // claims one fewer
  EXPECT_FALSE(coding::CodedPacket::parse(bytes, &out));
}

TEST(CodedPacketAudit, FuzzNeverCrashes) {
  Rng rng(0x77u);
  coding::CodedPacket out;
  for (int trial = 0; trial < 5000; ++trial) {
    std::vector<std::uint8_t> bytes(rng.next_below(64));
    for (auto& b : bytes) b = rng.next_byte();
    (void)coding::CodedPacket::parse(bytes, &out);
  }
}

}  // namespace
}  // namespace omnc

#include "experiments/workload.h"

#include <gtest/gtest.h>

#include "routing/etx.h"

namespace omnc::experiments {
namespace {

WorkloadConfig small_config() {
  WorkloadConfig config;
  config.deployment.nodes = 150;
  config.sessions = 12;
  config.min_hops = 3;
  config.max_hops = 8;
  config.seed = 101;
  return config;
}

TEST(Workload, GeneratesRequestedSessionCount) {
  const auto sessions = generate_workload(small_config());
  EXPECT_EQ(sessions.size(), 12u);
}

TEST(Workload, HopBoundsRespected) {
  const auto sessions = generate_workload(small_config());
  for (const auto& session : sessions) {
    EXPECT_GE(session.hops, 3);
    EXPECT_LE(session.hops, 8);
    // The recorded hop count matches a fresh computation.
    EXPECT_EQ(routing::etx_hop_count(*session.topology, session.src,
                                     session.dst),
              session.hops);
  }
}

TEST(Workload, SessionGraphsAreValid) {
  const auto sessions = generate_workload(small_config());
  for (const auto& session : sessions) {
    EXPECT_GE(session.graph.size(), 2);
    EXPECT_FALSE(session.graph.edges.empty());
    EXPECT_EQ(session.graph.node_id(session.graph.source), session.src);
    EXPECT_EQ(session.graph.node_id(session.graph.destination), session.dst);
  }
}

TEST(Workload, DeterministicForSeed) {
  const auto a = generate_workload(small_config());
  const auto b = generate_workload(small_config());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].src, b[i].src);
    EXPECT_EQ(a[i].dst, b[i].dst);
    EXPECT_EQ(a[i].seed, b[i].seed);
  }
}

TEST(Workload, DistinctSeedsPerSession) {
  const auto sessions = generate_workload(small_config());
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    for (std::size_t j = i + 1; j < sessions.size(); ++j) {
      EXPECT_NE(sessions[i].seed, sessions[j].seed);
    }
  }
}

TEST(Workload, MultipleTopologiesRoundRobin) {
  WorkloadConfig config = small_config();
  config.topologies = 3;
  config.sessions = 9;
  const auto sessions = generate_workload(config);
  ASSERT_EQ(sessions.size(), 9u);
  EXPECT_EQ(sessions[0].topology.get(), sessions[3].topology.get());
  EXPECT_NE(sessions[0].topology.get(), sessions[1].topology.get());
}

}  // namespace
}  // namespace omnc::experiments

// Zero-copy pipeline tests: CodedPacketView / DataFrameView parsing (round
// trips and hardened rejection), serialize_into equivalence, the view-based
// decoder path, and recode-from-basis equivalence against a hand-computed
// GF(2^8) combination of the offered packets.
#include <gtest/gtest.h>

#include <cstring>
#include <span>
#include <vector>

#include "coding/coded_packet.h"
#include "coding/decoder.h"
#include "coding/encoder.h"
#include "coding/generation.h"
#include "coding/recoder.h"
#include "common/rng.h"
#include "galois/gf256.h"
#include "wire/frame.h"

namespace omnc {
namespace {

coding::CodedPacket sample_packet(std::uint32_t session, std::uint32_t gen,
                                  std::uint16_t n, std::uint16_t m,
                                  std::uint64_t seed) {
  Rng rng(seed);
  coding::CodedPacket pkt;
  pkt.session_id = session;
  pkt.generation_id = gen;
  pkt.generation_blocks = n;
  pkt.block_bytes = m;
  pkt.coefficients.resize(n);
  pkt.payload.resize(m);
  for (auto& b : pkt.coefficients) b = rng.next_byte();
  if (pkt.coefficients[0] == 0) pkt.coefficients[0] = 1;
  for (auto& b : pkt.payload) b = rng.next_byte();
  return pkt;
}

bool aliases(std::span<const std::uint8_t> inner,
             std::span<const std::uint8_t> outer) {
  return inner.data() >= outer.data() &&
         inner.data() + inner.size() <= outer.data() + outer.size();
}

TEST(CodedPacketView, ParseRoundTripAliasesWire) {
  const coding::CodedPacket pkt = sample_packet(7, 3, 8, 64, 11);
  const std::vector<std::uint8_t> wire = pkt.serialize();
  coding::CodedPacketView view;
  ASSERT_TRUE(coding::CodedPacketView::parse(wire, &view));
  EXPECT_EQ(view.session_id, pkt.session_id);
  EXPECT_EQ(view.generation_id, pkt.generation_id);
  EXPECT_EQ(view.generation_blocks, pkt.generation_blocks);
  EXPECT_EQ(view.block_bytes, pkt.block_bytes);
  // The spans must alias the wire buffer — no copy happened.
  EXPECT_TRUE(aliases(view.coefficients, wire));
  EXPECT_TRUE(aliases(view.payload, wire));
  const coding::CodedPacket back = view.to_packet();
  EXPECT_EQ(back.coefficients, pkt.coefficients);
  EXPECT_EQ(back.payload, pkt.payload);
  EXPECT_EQ(back.serialize(), wire);
}

TEST(CodedPacketView, AsViewMatchesPacket) {
  const coding::CodedPacket pkt = sample_packet(1, 2, 4, 16, 5);
  const coding::CodedPacketView view = pkt.as_view();
  EXPECT_EQ(view.coefficients.data(), pkt.coefficients.data());
  EXPECT_EQ(view.payload.data(), pkt.payload.data());
  EXPECT_EQ(view.generation_id, pkt.generation_id);
  coding::CodingParams params{4, 16};
  EXPECT_TRUE(view.dimensions_match(params));
}

TEST(CodedPacketView, RejectsTruncationAndBadGeometry) {
  const coding::CodedPacket pkt = sample_packet(7, 3, 8, 64, 13);
  std::vector<std::uint8_t> wire = pkt.serialize();
  coding::CodedPacketView view;
  // Every proper prefix fails.
  for (const std::size_t len : {std::size_t{0}, std::size_t{5},
                                coding::CodedPacket::kHeaderBytes,
                                wire.size() - 1}) {
    EXPECT_FALSE(coding::CodedPacketView::parse(
        std::span<const std::uint8_t>(wire.data(), len), &view))
        << "len=" << len;
  }
  // Trailing garbage fails (exact-size contract).
  wire.push_back(0);
  EXPECT_FALSE(coding::CodedPacketView::parse(wire, &view));
}

TEST(DataFrameView, ParseRoundTripAliasesFrame) {
  wire::Frame frame = wire::make_coded_data(sample_packet(9, 4, 8, 32, 17));
  frame.trace_origin = 2;
  frame.trace_seq = 41;
  const std::vector<std::uint8_t> bytes = frame.serialize();
  wire::DataFrameView view;
  ASSERT_TRUE(wire::DataFrameView::parse(bytes, &view));
  EXPECT_EQ(view.session_id, frame.session_id);
  EXPECT_EQ(view.trace_origin, frame.trace_origin);
  EXPECT_EQ(view.trace_seq, frame.trace_seq);
  EXPECT_TRUE(aliases(view.packet.coefficients, bytes));
  EXPECT_TRUE(aliases(view.packet.payload, bytes));
  const coding::CodedPacket back = view.packet.to_packet();
  EXPECT_EQ(back.coefficients, frame.packet.coefficients);
  EXPECT_EQ(back.payload, frame.packet.payload);
}

TEST(DataFrameView, RejectsNonDataFrames) {
  const wire::Frame ack =
      wire::make_ack(9, wire::GenerationAck{3, 1, 0});
  const std::vector<std::uint8_t> bytes = ack.serialize();
  // The frame itself is valid...
  wire::Frame parsed;
  ASSERT_TRUE(wire::Frame::parse(bytes, &parsed));
  // ...but the data-view parser refuses it.
  wire::DataFrameView view;
  EXPECT_FALSE(wire::DataFrameView::parse(bytes, &view));
}

TEST(DataFrameView, RejectsCorruption) {
  const wire::Frame frame =
      wire::make_coded_data(sample_packet(9, 4, 8, 32, 19));
  const std::vector<std::uint8_t> bytes = frame.serialize();
  wire::DataFrameView view;
  // Any single flipped byte must fail (checksum or header validation).
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::vector<std::uint8_t> corrupt = bytes;
    corrupt[i] ^= 0x40;
    EXPECT_FALSE(wire::DataFrameView::parse(corrupt, &view)) << "byte " << i;
  }
  // Truncation fails.
  for (const std::size_t len :
       {std::size_t{0}, wire::kHeaderBytes - 1, bytes.size() - 1}) {
    EXPECT_FALSE(wire::DataFrameView::parse(
        std::span<const std::uint8_t>(bytes.data(), len), &view));
  }
}

TEST(DataFrameView, RejectsEmbeddedSessionMismatch) {
  const wire::Frame frame =
      wire::make_coded_data(sample_packet(9, 4, 8, 32, 23));
  std::vector<std::uint8_t> bytes = frame.serialize();
  // Patch the packet's embedded session id (first payload field, big-endian
  // low byte at offset header+3) and re-stamp a valid checksum, so the
  // session cross-check is the only thing left to catch it.
  bytes[wire::kHeaderBytes + 3] ^= 0x01;
  const std::uint32_t sum = wire::fnv1a(std::span<const std::uint8_t>(
      bytes.data() + wire::kTraceTagOffset,
      bytes.size() - wire::kTraceTagOffset));
  bytes[14] = static_cast<std::uint8_t>(sum >> 24);
  bytes[15] = static_cast<std::uint8_t>(sum >> 16);
  bytes[16] = static_cast<std::uint8_t>(sum >> 8);
  bytes[17] = static_cast<std::uint8_t>(sum);
  wire::DataFrameView view;
  EXPECT_FALSE(wire::DataFrameView::parse(bytes, &view));
  wire::Frame parsed;
  EXPECT_FALSE(wire::Frame::parse(bytes, &parsed));
}

TEST(Frame, SerializeIntoIsByteIdenticalAndReusesCapacity) {
  std::vector<wire::Frame> frames;
  frames.push_back(wire::make_coded_data(sample_packet(9, 4, 8, 32, 29)));
  frames.push_back(wire::make_ack(9, wire::GenerationAck{3, 1, 7}));
  frames.push_back(
      wire::make_resync_request(9, wire::ResyncRequest{2, 5}));
  frames[0].trace_origin = 1;
  frames[0].trace_seq = 99;
  std::vector<std::uint8_t> buffer;
  for (const wire::Frame& frame : frames) {
    frame.serialize_into(&buffer);
    EXPECT_EQ(buffer, frame.serialize());
  }
  // Re-serializing the largest frame into the warm buffer must not grow it.
  frames[0].serialize_into(&buffer);
  const std::size_t capacity = buffer.capacity();
  frames[0].serialize_into(&buffer);
  EXPECT_EQ(buffer.capacity(), capacity);
  EXPECT_EQ(buffer, frames[0].serialize());
}

TEST(Decoder, ViewOfferDecodesIdenticallyToOwningOffer) {
  const coding::CodingParams params{8, 64};
  const coding::Generation gen = coding::Generation::synthetic(0, params, 7);
  coding::SourceEncoder encoder(gen, 1);
  Rng rng(5);
  std::vector<coding::CodedPacket> packets;
  for (int i = 0; i < 10; ++i) packets.push_back(encoder.next_packet(rng));

  coding::ProgressiveDecoder by_packet(params, 0);
  coding::ProgressiveDecoder by_view(params, 0);
  for (const auto& pkt : packets) {
    const std::vector<std::uint8_t> wire = pkt.serialize();
    coding::CodedPacketView view;
    ASSERT_TRUE(coding::CodedPacketView::parse(wire, &view));
    EXPECT_EQ(by_view.offer(view), by_packet.offer(pkt));
  }
  ASSERT_TRUE(by_view.complete());
  const std::vector<std::uint8_t> a = by_packet.recover();
  std::vector<std::uint8_t> b(by_view.recovered_size());
  by_view.recover_into(std::span<std::uint8_t>(b));
  EXPECT_EQ(a, b);
  const std::span<const std::uint8_t> want = gen.bytes();
  ASSERT_EQ(b.size(), want.size());
  EXPECT_TRUE(std::equal(b.begin(), b.end(), want.begin()));
}

TEST(Recoder, RecodeIsHandComputedCombinationOfOfferedPackets) {
  const coding::CodingParams params{4, 32};
  const coding::Generation gen = coding::Generation::synthetic(2, params, 3);
  coding::SourceEncoder encoder(gen, 6);
  Rng src_rng(77);
  coding::Recoder recoder(params, 6, 2);
  std::vector<coding::CodedPacket> accepted;
  while (accepted.size() < 3) {
    const coding::CodedPacket pkt = encoder.next_packet(src_rng);
    const std::vector<std::uint8_t> wire = pkt.serialize();
    coding::CodedPacketView view;
    ASSERT_TRUE(coding::CodedPacketView::parse(wire, &view));
    if (recoder.offer(view)) accepted.push_back(pkt);
  }
  ASSERT_EQ(recoder.rank(), 3u);

  // Recode with a known rng, then redo the multiplier draw by hand: the
  // output must be exactly sum_k alpha_k * accepted[k] over GF(2^8), in
  // insertion order.
  Rng recode_rng(123);
  const coding::CodedPacket out = recoder.recode(recode_rng);
  Rng replay_rng(123);
  std::vector<std::uint8_t> alpha(accepted.size());
  bool nonzero = false;
  while (!nonzero) {
    for (auto& a : alpha) {
      a = replay_rng.next_byte();
      nonzero |= (a != 0);
    }
  }
  std::vector<std::uint8_t> coeffs(params.generation_blocks, 0);
  std::vector<std::uint8_t> payload(params.block_bytes, 0);
  for (std::size_t k = 0; k < accepted.size(); ++k) {
    for (std::size_t i = 0; i < coeffs.size(); ++i) {
      coeffs[i] = gf::add(coeffs[i],
                          gf::mul(alpha[k], accepted[k].coefficients[i]));
    }
    for (std::size_t i = 0; i < payload.size(); ++i) {
      payload[i] =
          gf::add(payload[i], gf::mul(alpha[k], accepted[k].payload[i]));
    }
  }
  EXPECT_EQ(out.coefficients, coeffs);
  EXPECT_EQ(out.payload, payload);
  EXPECT_EQ(out.session_id, 6u);
  EXPECT_EQ(out.generation_id, 2u);

  // recode_into with the same rng state reproduces recode() byte for byte
  // into a reused packet.
  Rng again(123);
  coding::CodedPacket reused = sample_packet(0, 0, 4, 32, 1);  // dirty
  recoder.recode_into(again, &reused);
  EXPECT_EQ(reused.coefficients, out.coefficients);
  EXPECT_EQ(reused.payload, out.payload);
}

TEST(Recoder, NonInnovativeViewPayloadIsNeverCopied) {
  const coding::CodingParams params{4, 16};
  const coding::Generation gen = coding::Generation::synthetic(0, params, 9);
  coding::SourceEncoder encoder(gen, 1);
  Rng rng(4);
  coding::Recoder recoder(params, 1, 0);
  const coding::CodedPacket pkt = encoder.next_packet(rng);
  ASSERT_TRUE(recoder.offer(pkt.as_view()));
  // The identical packet again: dependent, so the payload span may be
  // garbage — hand the view a payload span of poisoned bytes to prove the
  // dependent path never reads it into the basis.
  std::vector<std::uint8_t> poison(params.block_bytes, 0xEE);
  coding::CodedPacketView dup = pkt.as_view();
  dup.payload = std::span<const std::uint8_t>(poison.data(), poison.size());
  EXPECT_FALSE(recoder.offer(dup));
  // A recode still reflects only the accepted packet's payload.
  Rng recode_rng(1);
  const coding::CodedPacket out = recoder.recode(recode_rng);
  Rng replay(1);
  std::uint8_t alpha = 0;
  while (alpha == 0) alpha = replay.next_byte();
  for (std::size_t i = 0; i < out.payload.size(); ++i) {
    EXPECT_EQ(out.payload[i], gf::mul(alpha, pkt.payload[i]));
  }
}

}  // namespace
}  // namespace omnc

// Diffs two flat bench-JSON files (the {"name","params","metric","value"}
// records JsonWriter emits) so CI can gate runs against committed baselines
// (bench/baselines/).
//
// Usage: bench_compare BASELINE CURRENT [--tol R] [--warn-only]
//                      [--metrics REGEXLESS-LIST]
//
//   --tol        allowed relative deviation |cur - base| / max(|base|, eps)
//                before a record counts as a violation          (0.10)
//   --warn-only  report violations but exit 0 — for noisy metrics (wall
//                timings on shared CI runners) where the trajectory matters
//                but a hard gate would flake
//   --metrics    comma-separated metric names to compare; others are
//                carried along informationally        (default: all)
//
// Records are matched by the (name, params, metric) triple.  Records present
// on only one side are reported (missing baselines are informational — new
// benches appear; missing current records are violations — a bench silently
// vanished).  Exit status: 0 clean or --warn-only, 1 violations, 2 usage or
// parse failure.
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/options.h"

using namespace omnc;

namespace {

struct Record {
  std::string name;
  std::string params;
  std::string metric;
  double value = 0.0;
};

/// Pulls the string field `key` out of one JSON object line; the writer
/// emits one record per line, so a line-oriented scan is exact for files it
/// produced (escaped quotes are handled).
bool field(const std::string& line, const std::string& key, std::string* out) {
  const std::string needle = "\"" + key + "\": \"";
  const std::size_t start = line.find(needle);
  if (start == std::string::npos) return false;
  std::string value;
  for (std::size_t i = start + needle.size(); i < line.size(); ++i) {
    if (line[i] == '\\' && i + 1 < line.size()) {
      value.push_back(line[++i]);
      continue;
    }
    if (line[i] == '"') {
      *out = std::move(value);
      return true;
    }
    value.push_back(line[i]);
  }
  return false;
}

bool number_field(const std::string& line, const std::string& key,
                  double* out) {
  const std::string needle = "\"" + key + "\": ";
  const std::size_t start = line.find(needle);
  if (start == std::string::npos) return false;
  return std::sscanf(line.c_str() + start + needle.size(), "%lg", out) == 1;
}

bool load(const std::string& path, std::vector<Record>* out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_compare: cannot open %s\n", path.c_str());
    return false;
  }
  std::string line;
  while (std::getline(in, line)) {
    Record record;
    if (!field(line, "name", &record.name)) continue;
    if (!field(line, "metric", &record.metric)) continue;
    field(line, "params", &record.params);
    if (!number_field(line, "value", &record.value)) continue;
    out->push_back(std::move(record));
  }
  return true;
}

bool metric_selected(const std::string& metric, const std::string& list) {
  if (list.empty()) return true;
  std::stringstream stream(list);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (item == metric) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  const Options options(argc, argv);
  if (options.positional().size() != 2) {
    std::fprintf(stderr,
                 "usage: bench_compare BASELINE CURRENT [--tol R] "
                 "[--warn-only] [--metrics a,b,...]\n");
    return 2;
  }
  const double tol = options.get_double("tol", 0.10);
  const bool warn_only = options.get_bool("warn-only", false);
  const std::string metric_list = options.get("metrics", "");

  std::vector<Record> base_records;
  std::vector<Record> current_records;
  if (!load(options.positional()[0], &base_records) ||
      !load(options.positional()[1], &current_records)) {
    return 2;
  }

  std::map<std::string, double> baseline;
  for (const Record& r : base_records) {
    baseline[r.name + "|" + r.params + "|" + r.metric] = r.value;
  }

  int violations = 0;
  int compared = 0;
  for (const Record& r : current_records) {
    const std::string key = r.name + "|" + r.params + "|" + r.metric;
    auto it = baseline.find(key);
    if (it == baseline.end()) {
      std::printf("NEW       %s = %.6g (no baseline)\n", key.c_str(), r.value);
      continue;
    }
    const double base = it->second;
    baseline.erase(it);
    if (!metric_selected(r.metric, metric_list)) {
      std::printf("SKIP      %s = %.6g (baseline %.6g)\n", key.c_str(),
                  r.value, base);
      continue;
    }
    ++compared;
    const double rel =
        std::fabs(r.value - base) / std::max(std::fabs(base), 1e-12);
    if (rel <= tol) {
      std::printf("OK        %s = %.6g (baseline %.6g, drift %.1f%%)\n",
                  key.c_str(), r.value, base, rel * 100.0);
    } else {
      ++violations;
      std::printf("VIOLATION %s = %.6g (baseline %.6g, drift %.1f%% > %.1f%%)\n",
                  key.c_str(), r.value, base, rel * 100.0, tol * 100.0);
    }
  }
  for (const auto& [key, value] : baseline) {
    if (!metric_selected(key.substr(key.rfind('|') + 1), metric_list)) continue;
    ++violations;
    std::printf("MISSING   %s (baseline %.6g, absent from current run)\n",
                key.c_str(), value);
  }

  std::printf("bench_compare: %d compared, %d violation%s (tol %.1f%%)%s\n",
              compared, violations, violations == 1 ? "" : "s", tol * 100.0,
              warn_only && violations > 0 ? " [warn-only]" : "");
  if (violations > 0 && !warn_only) return 1;
  return 0;
}

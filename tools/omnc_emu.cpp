// Drift-substitute emulation driver: one OMNC session, real threads, real
// serialized frames, pluggable transport.
//
// Usage: omnc_emu [--transport loopback|udp] [--topology diamond|chain]
//                 [--hops N] [--link-p P] [--generations N] [--gen-blocks N]
//                 [--block-bytes B] [--capacity C] [--cbr R] [--seed S]
//                 [--sessions N] [--shards K]
//                 [--code-family dense|systematic|banded[:W]] [--band-width W]
//                 [--auto-tune] [--tune-target P]
//                 [--clock real|warp|det] [--speedup X] [--time-scale X]
//                 [--timeout S] [--virtual-timeout S] [--probe-window S]
//                 [--oracle-rates] [--cross-check] [--tol-lo R] [--tol-hi R]
//                 [--fault-plan SPEC] [--json PATH] [--trace PATH] [--metrics]
//                 [--health-json PATH] [--health-interval S]
//
//   --transport     loopback: in-memory channel, per-link Bernoulli loss
//                   from the session graph's reception probabilities;
//                   udp: one non-blocking UDP socket per node on 127.0.0.1
//                   (ephemeral ports), lossless in practice    (loopback)
//   --topology      diamond: the paper's Fig. 2 four-node relay diamond;
//                   chain: a (--hops)-link line with --link-p   (diamond)
//   --generations   generations the source must deliver              (8)
//   --sessions      concurrent unicast sessions multiplexed over ONE
//                   shared transport (SessionMux, DESIGN.md §16):
//                   session s runs wire session id 1+s with seeds
//                   --seed + s.  1 keeps the classic single-session
//                   EmuHarness path, byte-identical to prior releases (1)
//   --shards        worker threads for --sessions > 1 under real/warp
//                   clocks; each owns the node indices congruent to its
//                   shard id (the socket is the serialization domain).
//                   0 = min(nodes, hardware threads)                  (0)
//   --code-family   code family every node runs (DESIGN.md §15):
//                   dense | systematic | banded[:W].  Defaults to the
//                   OMNC_CODE_FAMILY environment variable, then dense;
//                   non-dense emissions ride compact coefficient frames
//   --band-width    banded window width override (0 = auto, n/4)
//   --auto-tune     finite-length tuner: picks the generation size
//                   (powers of two within [8, --gen-blocks]) and the source
//                   redundancy from the session graph's mean link loss,
//                   overriding --gen-blocks (codes/tuner.h)
//   --tune-target   decode-probability target for --auto-tune       (0.99)
//   --clock         how virtual time advances (DESIGN.md §12):
//                   real: wall time x speedup; warp: as fast as the node
//                   threads can step; det: single-threaded deterministic
//                   stepping (exact seed replay)                  (real)
//   --speedup       virtual seconds per wall second (real clock); also
//                   sets the virtual node-step cadence everywhere   (20)
//   --time-scale    alias for --speedup
//   --timeout       wall-clock budget in seconds (real clock)       (60)
//   --virtual-timeout  virtual-seconds budget, all clocks
//                      (0 = timeout x speedup)                      (0)
//   --probe-window  virtual seconds of link probing before the data
//                   phase; estimates are reported and traced        (0 = off)
//   --oracle-rates  install rate-control rates directly on every node
//                   instead of flooding them in-band as PriceUpdate frames
//   --cross-check   run the slot simulator on the same topology and require
//                   emu/sim goodput within [--tol-lo, --tol-hi].  Under
//                   --clock det the tolerance gate is replaced by an exact
//                   replay assertion: a second deterministic run on a fresh
//                   transport must reproduce the first bit for bit (the sim
//                   ratio is still printed for reference)
//   --fault-plan    wrap the transport in a deterministic FaultTransport;
//                   SPEC is a preset name (burst|jitter|partition|blackout|
//                   chaos) or a directive string, see FaultPlan::parse.
//                   A spec without `seed=` inherits --seed.  Fault decisions
//                   appear in the trace (`trace_inspect --faults`)
//   --json          write flat result records (bench JSON schema)
//   --trace         record a JSONL trace (schema v2): metric events, packet
//                   lifecycle spans, and latency histograms.  Inspect with
//                   `trace_inspect --transport / --timeline / --histograms`
//   --health-json   periodically write a live health document (counters,
//                   latency histograms, anomalies, flight recorder) to PATH
//                   via atomic tmp+rename, once per snapshot interval and
//                   once at run end
//   --health-interval  snapshot cadence in virtual seconds (also the anomaly
//                   evaluation cadence); prints a one-line health summary to
//                   stderr at every snapshot                        (1)
//
// Exit status: 0 when the destination decoded every generation with the
// correct bytes (and the cross-check, if requested, passed).
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "codes/code_spec.h"
#include "codes/tuner.h"
#include "common/options.h"
#include "emu/emu_harness.h"
#include "emu/fault_transport.h"
#include "emu/loopback_transport.h"
#include "emu/session_mux.h"
#include "emu/udp_transport.h"
#include "net/topology.h"
#include "obs/health.h"
#include "obs/trace.h"
#include "opt/rate_control.h"
#include "opt/sunicast.h"
#include "protocols/omnc.h"
#include "routing/node_selection.h"

using namespace omnc;

namespace {

net::Topology make_topology(const std::string& name, int hops, double link_p) {
  if (name == "diamond") {
    // The Fig. 2 diamond: source 0, relays 1/2, destination 3.
    std::vector<std::vector<double>> p(4, std::vector<double>(4, 0.0));
    p[0][1] = p[1][0] = 0.8;
    p[0][2] = p[2][0] = 0.6;
    p[1][3] = p[3][1] = 0.7;
    p[2][3] = p[3][2] = 0.9;
    return net::Topology::from_link_matrix(p);
  }
  if (name == "chain") {
    const int n = hops + 1;
    std::vector<std::vector<double>> p(static_cast<std::size_t>(n),
                                       std::vector<double>(n, 0.0));
    for (int i = 0; i + 1 < n; ++i) {
      p[static_cast<std::size_t>(i)][static_cast<std::size_t>(i) + 1] = link_p;
      p[static_cast<std::size_t>(i) + 1][static_cast<std::size_t>(i)] = link_p;
    }
    return net::Topology::from_link_matrix(p);
  }
  std::fprintf(stderr, "unknown --topology %s (diamond|chain)\n",
               name.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  const Options options(argc, argv);

  const std::string transport_name = options.get("transport", "loopback");
  const std::string topology_name = options.get("topology", "diamond");
  const int hops = static_cast<int>(options.get_int("hops", 3));
  const double link_p = options.get_double("link-p", 0.8);
  const std::uint64_t seed = options.get_seed("seed", 1);

  emu::EmuConfig config;
  config.node.coding.generation_blocks =
      static_cast<std::uint16_t>(options.get_int("gen-blocks", 8));
  config.node.coding.block_bytes =
      static_cast<std::uint16_t>(options.get_int("block-bytes", 64));
  config.node.session_id = 1;
  config.node.data_seed = seed;
  config.node.rng_seed = seed;
  config.node.cbr_bytes_per_s = options.get_double("cbr", 1e4);
  config.node.max_generations =
      static_cast<int>(options.get_int("generations", 8));
  codes::CodeSpec code_spec = codes::CodeSpec::from_env();
  const std::string family_arg = options.get("code-family", "");
  if (!family_arg.empty() && !codes::CodeSpec::parse(family_arg, &code_spec)) {
    std::fprintf(stderr,
                 "unknown --code-family %s (dense|systematic|banded[:W])\n",
                 family_arg.c_str());
    return 2;
  }
  if (options.has("band-width")) {
    if (code_spec.family != codes::CodeFamily::kBanded) {
      std::fprintf(stderr, "--band-width requires --code-family banded\n");
      return 2;
    }
    code_spec.band_width =
        static_cast<std::uint16_t>(options.get_int("band-width", 0));
  }
  config.node.code = code_spec;
  config.node.probe_window_s = options.get_double("probe-window", 0.0);
  config.node.data_start_s = config.node.probe_window_s + 0.5;
  const std::string clock_name = options.get("clock", "real");
  if (!vtime::parse_clock_mode(clock_name, &config.clock_mode)) {
    std::fprintf(stderr, "unknown --clock %s (real|warp|det)\n",
                 clock_name.c_str());
    return 2;
  }
  config.speedup =
      options.get_double("time-scale", options.get_double("speedup", 20.0));
  config.wall_timeout_s = options.get_double("timeout", 60.0);
  config.virtual_timeout_s = options.get_double("virtual-timeout", 0.0);
  const double capacity = options.get_double("capacity", 2e4);
  const int sessions = static_cast<int>(options.get_int("sessions", 1));
  const int shards = static_cast<int>(options.get_int("shards", 0));
  if (sessions < 1) {
    std::fprintf(stderr, "--sessions must be >= 1\n");
    return 2;
  }

  const net::Topology topo = make_topology(topology_name, hops, link_p);
  const net::NodeId destination = static_cast<net::NodeId>(topo.node_count() - 1);
  const routing::SessionGraph graph = routing::select_nodes(topo, 0, destination);
  if (graph.size() == 0) {
    std::fprintf(stderr, "topology is not connected\n");
    return 2;
  }

  // Finite-length auto-tune: the measured loss is the session graph's mean
  // link loss (each forwarding hop faces one of these links), the tuner
  // picks the most air-efficient generation size meeting the decode target
  // and its send count becomes the source's redundancy multiplier.
  const bool auto_tune = options.get_bool("auto-tune", false);
  codes::TunerChoice tuned;
  if (auto_tune) {
    double loss_sum = 0.0;
    for (const auto& edge : graph.edges) loss_sum += 1.0 - edge.p;
    const double loss =
        graph.edges.empty() ? 0.0 : loss_sum / static_cast<double>(graph.edges.size());
    tuned = codes::tune_generation(
        loss, options.get_double("tune-target", 0.99), 8,
        config.node.coding.generation_blocks,
        config.node.coding.block_bytes);
    config.node.coding.generation_blocks =
        static_cast<std::uint16_t>(tuned.generation_blocks);
    config.node.source_redundancy = tuned.redundancy;
    std::printf("# auto-tune: mean link loss %.3f -> g=%d, send %d "
                "(redundancy %.2f, P[decode]=%.4f, efficiency %.3f)\n",
                loss, tuned.generation_blocks, tuned.send_count,
                tuned.redundancy, tuned.success_prob, tuned.efficiency);
  }

  // The same preparation OmncProtocol::prepare runs: distributed rate
  // control, then rescale the recovered broadcast rates to MAC feasibility.
  opt::RateControlParams rc_params;
  rc_params.capacity = capacity;
  opt::DistributedRateControl rate_control(graph, rc_params);
  const opt::RateControlResult rc = rate_control.run();
  std::vector<double> rates = rc.b;
  opt::rescale_to_feasible(graph, rates, capacity);

  // Optional fault injection: the decorator wraps whichever backend was
  // chosen, so burst loss and partitions apply identically over loopback
  // and UDP.  A spec without an explicit seed inherits the run seed, so
  // sweeps over --seed exercise distinct fault realizations by default.
  const std::string fault_spec = options.get("fault-plan", "");
  emu::FaultPlan fault_plan;
  bool have_fault_plan = false;
  if (!fault_spec.empty()) {
    std::string error;
    if (!emu::FaultPlan::parse(fault_spec, &fault_plan, &error)) {
      std::fprintf(stderr, "bad --fault-plan: %s\n", error.c_str());
      return 2;
    }
    if (fault_spec.find("seed=") == std::string::npos) fault_plan.seed = seed;
    have_fault_plan = true;
  }

  // The whole transport stack comes from a factory so the deterministic
  // replay cross-check can build a pristine second copy.  The base
  // transport must stay alive underneath the decorator.
  struct TransportBundle {
    std::unique_ptr<emu::Transport> base;
    std::unique_ptr<emu::FaultTransport> fault;
    emu::Transport* transport = nullptr;
  };
  auto make_transport = [&]() {
    TransportBundle bundle;
    if (transport_name == "loopback") {
      emu::LoopbackConfig loopback;
      loopback.seed = seed;
      bundle.base = std::make_unique<emu::LoopbackTransport>(
          graph.size(), emu::link_matrix_from_topology(topo, graph), loopback);
    } else if (transport_name == "udp") {
      bundle.base = std::make_unique<emu::UdpTransport>(graph.size());
    } else {
      std::fprintf(stderr, "unknown --transport %s (loopback|udp)\n",
                   transport_name.c_str());
      std::exit(2);
    }
    if (have_fault_plan) {
      bundle.fault =
          std::make_unique<emu::FaultTransport>(*bundle.base, fault_plan);
      bundle.transport = bundle.fault.get();
    } else {
      bundle.transport = bundle.base.get();
    }
    return bundle;
  };
  TransportBundle bundle = make_transport();

  // The code-family suffix appears only for non-dense runs, so every dense
  // record key (and with it the pre-family baselines) stays byte-identical.
  std::string family_suffix;
  if (!code_spec.is_dense()) {
    family_suffix = ";code_family=" + code_spec.selector();
  }
  if (auto_tune) family_suffix += ";auto_tune=1";
  // Session-mux runs append their dimensions so mux records never collide
  // with the single-session baselines (which stay byte-identical).  Shards
  // only appear when pinned explicitly — the auto value depends on the
  // host's core count and would make record keys machine-dependent.
  std::string mux_suffix;
  if (sessions > 1) {
    mux_suffix = ";sessions=" + std::to_string(sessions);
    if (shards > 0) mux_suffix += ";shards=" + std::to_string(shards);
  }
  char params[448];
  std::snprintf(params, sizeof(params),
                "transport=%s;topology=%s;generations=%d;gen_blocks=%u;"
                "block_bytes=%u;seed=%llu%s%s%s%s",
                transport_name.c_str(), topology_name.c_str(),
                config.node.max_generations,
                config.node.coding.generation_blocks,
                config.node.coding.block_bytes,
                static_cast<unsigned long long>(seed),
                fault_spec.empty() ? "" : ";fault_plan=",
                fault_spec.c_str(), family_suffix.c_str(),
                mux_suffix.c_str());
  bench::ObsSetup obs = bench::parse_obs(options, "omnc_emu", params, seed);
  bench::JsonWriter json(options);

  // The health plane rides the same serialized sinks as the recorder: the
  // monitor is fed whenever tracing (its histograms land in the trace at run
  // end) or when either --health flag asks for live output.
  const std::string health_path = options.get("health-json", "");
  const bool health_stderr = options.has("health-interval");
  const bool want_health =
      !health_path.empty() || health_stderr || obs.recorder != nullptr;
  obs::HealthConfig health_config;
  health_config.snapshot_interval_s =
      options.get_double("health-interval", health_config.snapshot_interval_s);
  obs::HealthMonitor health(health_config);
  if (!health_path.empty() || health_stderr) {
    health.set_snapshot_callback([&](const obs::HealthMonitor& h) {
      if (health_stderr) std::fprintf(stderr, "%s\n", h.one_liner().c_str());
      if (!health_path.empty()) h.write_json(health_path);
    });
  }

  int run_id = -1;
  std::unique_ptr<obs::RunSink> run_sink;
  if (obs.recorder != nullptr) {
    obs::RunContext context;
    context.protocol = "omnc-emu";
    context.seed = seed;
    context.topology_nodes = topo.node_count();
    context.generation_blocks = config.node.coding.generation_blocks;
    context.block_bytes = config.node.coding.block_bytes;
    context.capacity_bytes_per_s = capacity;
    context.cbr_bytes_per_s = config.node.cbr_bytes_per_s;
    context.sim_seconds = config.wall_timeout_s * config.speedup;
    if (!code_spec.is_dense()) context.code_family = code_spec.selector();
    run_id = obs.recorder->begin_run(context, {&graph});
    run_sink = std::make_unique<obs::RunSink>(obs.recorder.get(), run_id);
    // No end_run record on purpose: the emulation result is not a
    // SessionResult the replay sinks could reconstruct, so the run stays a
    // pure event stream (trace_inspect --verify treats it as vacuous).
  }
  const bool oracle_rates = options.get_bool("oracle-rates", false);
  auto metric_sink = [&](const protocols::MetricEvent& event) {
    if (run_sink != nullptr) run_sink->on_event(event);
    if (want_health) health.on_metric(event);
  };
  auto span_sink = [&](const obs::SpanEvent& event) {
    if (obs.recorder != nullptr) obs.recorder->record_span(run_id, event);
    if (want_health) health.on_span(event);
  };

  // --sessions > 1 takes the session-mux runtime (DESIGN.md §16); the
  // classic single-session EmuHarness path below is untouched so its
  // records, traces, and exit behavior stay byte-identical.
  if (sessions > 1) {
    emu::MuxConfig mux_config;
    mux_config.emu = config;
    mux_config.sessions = sessions;
    mux_config.shards = shards;
    emu::SessionMux mux(graph, *bundle.transport, mux_config);
    if (oracle_rates) {
      mux.install_rates(rates);
    } else {
      mux.install_price_table(rates, rc.lambda, rc.beta, rc.iterations);
    }
    if (run_sink != nullptr || want_health) {
      mux.set_metric_sink(metric_sink);
      mux.set_span_sink(span_sink);
    }

    std::printf("# omnc_emu: %d sessions muxed over shared %s, %s, %d nodes, "
                "%d generations each of %u x %u B, clock %s, seed %llu\n",
                sessions, transport_name.c_str(), topology_name.c_str(),
                graph.size(), config.node.max_generations,
                config.node.coding.generation_blocks,
                config.node.coding.block_bytes,
                vtime::clock_mode_name(config.clock_mode),
                static_cast<unsigned long long>(seed));
    if (!code_spec.is_dense()) {
      std::printf("# code family: %s\n",
                  code_spec.clamped_for(config.node.coding).selector().c_str());
    }
    if (bundle.fault != nullptr) {
      std::printf("# fault plan: %s\n",
                  bundle.fault->plan().describe().c_str());
    }
    const emu::MuxRunResult result = mux.run();

    int gens_total = 0;
    int sessions_completed = 0;
    double goodput_min = 0.0, goodput_max = 0.0, goodput_sum = 0.0;
    double latency_sum = 0.0;
    std::size_t parse_errors = 0;
    for (std::size_t s = 0; s < result.sessions.size(); ++s) {
      const emu::EmuRunResult& session = result.sessions[s];
      gens_total += session.generations_completed;
      if (session.completed) ++sessions_completed;
      if (s == 0 || session.goodput_bytes_per_s < goodput_min) {
        goodput_min = session.goodput_bytes_per_s;
      }
      if (s == 0 || session.goodput_bytes_per_s > goodput_max) {
        goodput_max = session.goodput_bytes_per_s;
      }
      goodput_sum += session.goodput_bytes_per_s;
      latency_sum += session.mean_ack_latency;
      parse_errors += session.parse_errors;
    }
    const double count = static_cast<double>(result.sessions.size());
    std::printf("completed: %s (%d/%d sessions)  decoded data: %s\n",
                result.completed ? "yes" : "NO (timeout)", sessions_completed,
                sessions, result.data_ok ? "ok" : "MISMATCH");
    std::printf("generations: %d total  session goodput min/mean/max: "
                "%.1f / %.1f / %.1f B/s  mean latency %.3f s\n",
                gens_total, goodput_min, goodput_sum / count, goodput_max,
                latency_sum / count);
    // Per-session lines stay readable for sweeps; big soaks get the laggard.
    if (sessions <= 16) {
      for (std::size_t s = 0; s < result.sessions.size(); ++s) {
        const emu::EmuRunResult& session = result.sessions[s];
        std::printf("  session %u: %d gens, %.1f B/s, last ACK %.3f s, "
                    "mean latency %.3f s%s%s\n",
                    mux.session_id_of(static_cast<int>(s)),
                    session.generations_completed,
                    session.goodput_bytes_per_s, session.last_ack_time,
                    session.mean_ack_latency,
                    session.completed ? "" : " [INCOMPLETE]",
                    session.data_ok ? "" : " [DATA MISMATCH]");
      }
    } else {
      std::size_t worst = 0;
      for (std::size_t s = 1; s < result.sessions.size(); ++s) {
        if (result.sessions[s].goodput_bytes_per_s <
            result.sessions[worst].goodput_bytes_per_s) {
          worst = s;
        }
      }
      const emu::EmuRunResult& session = result.sessions[worst];
      std::printf("  slowest session %u: %d gens, %.1f B/s, last ACK %.3f s\n",
                  mux.session_id_of(static_cast<int>(worst)),
                  session.generations_completed, session.goodput_bytes_per_s,
                  session.last_ack_time);
    }
    std::printf("transport: %zu broadcasts (%zu bytes), %zu delivered, "
                "%zu dropped, %zu parse errors, %zu EINTR retries\n",
                result.transport.frames_sent, result.transport.bytes_sent,
                result.transport.copies_delivered,
                result.transport.copies_dropped, parse_errors,
                result.transport.eintr_retries);
    if (result.demux_unroutable + result.demux_session_mismatch +
            result.demux_unknown_session >
        0) {
      std::printf("demux rejections: %zu unroutable, %zu session mismatch, "
                  "%zu unknown session\n",
                  result.demux_unroutable, result.demux_session_mismatch,
                  result.demux_unknown_session);
    }
    if (bundle.fault != nullptr) {
      const emu::FaultStats faults = bundle.fault->fault_stats();
      std::printf("faults: %zu lost, %zu duplicated, %zu reordered, "
                  "%zu partition drops, %zu blackout rx drops, "
                  "%zu blackout tx suppressed\n",
                  faults.lost, faults.duplicated, faults.reordered,
                  faults.partition_drops, faults.blackout_rx_drops,
                  faults.blackout_tx_suppressed);
    }

    if (want_health) {
      if (health_stderr) {
        std::fprintf(stderr, "%s\n", health.one_liner().c_str());
      }
      if (!health_path.empty() && !health.write_json(health_path)) {
        std::fprintf(stderr, "cannot write --health-json %s\n",
                     health_path.c_str());
      }
      std::printf("health: hop delay p50 %.6f s p99 %.6f s (%llu hops), "
                  "decode p50 %.3f s, %zu anomalies, %zu sessions tracked\n",
                  health.hop_delay().quantile(50.0),
                  health.hop_delay().quantile(99.0),
                  static_cast<unsigned long long>(health.hop_delay().count()),
                  health.decode_latency().quantile(50.0),
                  health.anomalies().size(), health.sessions().size());
      for (const obs::HealthAnomaly& anomaly : health.anomalies()) {
        std::printf("  anomaly t=%.3f %s: %s\n", anomaly.time,
                    anomaly.kind.c_str(), anomaly.detail.c_str());
      }
    }
    if (obs.recorder != nullptr) {
      obs.recorder->record_histogram(run_id, "hop_delay", health.hop_delay());
      obs.recorder->record_histogram(run_id, "decode_latency",
                                     health.decode_latency());
      obs.recorder->record_histogram(run_id, "stall_wait",
                                     health.stall_wait());
    }

    json.record("omnc_emu", params, "mux_sessions",
                static_cast<double>(sessions));
    json.record("omnc_emu", params, "completed", result.completed ? 1.0 : 0.0);
    json.record("omnc_emu", params, "data_ok", result.data_ok ? 1.0 : 0.0);
    json.record("omnc_emu", params, "generations_total",
                static_cast<double>(gens_total));
    json.record("omnc_emu", params, "session_goodput_min_bytes_per_s",
                goodput_min);
    json.record("omnc_emu", params, "session_goodput_mean_bytes_per_s",
                goodput_sum / count);
    json.record("omnc_emu", params, "session_goodput_max_bytes_per_s",
                goodput_max);
    json.record("omnc_emu", params, "mean_ack_latency_s",
                latency_sum / count);
    json.record("omnc_emu", params, "frames_sent",
                static_cast<double>(result.transport.frames_sent));
    json.record("omnc_emu", params, "copies_delivered",
                static_cast<double>(result.transport.copies_delivered));
    json.record("omnc_emu", params, "copies_dropped",
                static_cast<double>(result.transport.copies_dropped));
    json.record("omnc_emu", params, "parse_errors",
                static_cast<double>(parse_errors));
    json.record("omnc_emu", params, "demux_unroutable",
                static_cast<double>(result.demux_unroutable));
    json.record("omnc_emu", params, "demux_session_mismatch",
                static_cast<double>(result.demux_session_mismatch));
    json.record("omnc_emu", params, "demux_unknown_session",
                static_cast<double>(result.demux_unknown_session));
    if (sessions <= 16) {
      for (std::size_t s = 0; s < result.sessions.size(); ++s) {
        char metric[64];
        std::snprintf(metric, sizeof(metric),
                      "session%u_goodput_bytes_per_s", mux.session_id_of(
                          static_cast<int>(s)));
        json.record("omnc_emu", params, metric,
                    result.sessions[s].goodput_bytes_per_s);
      }
    }

    bool ok = result.completed && result.data_ok;

    if (options.get_bool("cross-check", false)) {
      if (config.clock_mode == vtime::ClockMode::kDeterministic) {
        // Deterministic mux runs owe an exact replay: a second run on a
        // pristine transport stack must reproduce every session's result
        // bit for bit.
        TransportBundle replay_bundle = make_transport();
        emu::SessionMux replay(graph, *replay_bundle.transport, mux_config);
        if (oracle_rates) {
          replay.install_rates(rates);
        } else {
          replay.install_price_table(rates, rc.lambda, rc.beta,
                                     rc.iterations);
        }
        const emu::MuxRunResult second = replay.run();
        bool exact =
            second.sessions.size() == result.sessions.size() &&
            second.transport.frames_sent == result.transport.frames_sent &&
            second.transport.copies_delivered ==
                result.transport.copies_delivered &&
            second.transport.copies_dropped ==
                result.transport.copies_dropped &&
            second.demux_unroutable == result.demux_unroutable &&
            second.demux_session_mismatch == result.demux_session_mismatch &&
            second.demux_unknown_session == result.demux_unknown_session;
        for (std::size_t s = 0; exact && s < result.sessions.size(); ++s) {
          const emu::EmuRunResult& a = result.sessions[s];
          const emu::EmuRunResult& b = second.sessions[s];
          exact = a.completed == b.completed && a.data_ok == b.data_ok &&
                  a.generations_completed == b.generations_completed &&
                  a.goodput_bytes_per_s == b.goodput_bytes_per_s &&
                  a.last_ack_time == b.last_ack_time &&
                  a.mean_ack_latency == b.mean_ack_latency &&
                  a.ack_latencies == b.ack_latencies &&
                  a.data_packets_sent == b.data_packets_sent;
          if (!exact) {
            std::printf("replay divergence in session %u: goodput %.17g vs "
                        "%.17g, gens %d vs %d\n",
                        mux.session_id_of(static_cast<int>(s)),
                        a.goodput_bytes_per_s, b.goodput_bytes_per_s,
                        a.generations_completed, b.generations_completed);
          }
        }
        std::printf("cross-check: deterministic mux replay %s "
                    "(%zu sessions)\n",
                    exact ? "EXACT" : "DIVERGED", result.sessions.size());
        json.record("omnc_emu", params, "replay_exact", exact ? 1.0 : 0.0);
        ok = ok && exact;
      } else {
        // Tolerance mode: each session is an independent unicast of the
        // same shape, so every one must individually land inside the
        // emu/sim band a single-session run is held to.
        protocols::ProtocolConfig sim_config;
        sim_config.coding = config.node.coding;
        sim_config.mac.capacity_bytes_per_s = capacity;
        sim_config.mac.slot_bytes = coding::CodedPacket::kHeaderBytes +
                                    config.node.coding.generation_blocks +
                                    config.node.coding.block_bytes;
        sim_config.mac.fading.enabled = false;
        sim_config.cbr_bytes_per_s = config.node.cbr_bytes_per_s;
        sim_config.max_generations = config.node.max_generations;
        sim_config.max_sim_seconds = 600.0;
        sim_config.seed = seed;
        protocols::OmncProtocol sim(topo, graph, sim_config,
                                    protocols::OmncConfig{});
        const protocols::SessionResult sim_result = sim.run();
        const double tol_lo = options.get_double("tol-lo", 0.2);
        const double tol_hi = options.get_double("tol-hi", 3.5);
        int within = 0;
        for (const emu::EmuRunResult& session : result.sessions) {
          const double ratio =
              sim_result.throughput_bytes_per_s > 0.0
                  ? session.goodput_bytes_per_s /
                        sim_result.throughput_bytes_per_s
                  : 0.0;
          if (ratio >= tol_lo && ratio <= tol_hi) ++within;
        }
        const bool all_within =
            within == static_cast<int>(result.sessions.size());
        std::printf("cross-check: sim goodput %.1f B/s, %d/%zu sessions "
                    "inside [%.2f, %.2f] — %s\n",
                    sim_result.throughput_bytes_per_s, within,
                    result.sessions.size(), tol_lo, tol_hi,
                    all_within ? "ok" : "OUT OF TOLERANCE");
        json.record("omnc_emu", params, "sim_goodput_bytes_per_s",
                    sim_result.throughput_bytes_per_s);
        json.record("omnc_emu", params, "sessions_within_tolerance",
                    static_cast<double>(within));
        ok = ok && all_within;
      }
    }

    bench::finish_obs(obs);
    return ok ? 0 : 1;
  }

  emu::EmuHarness harness(graph, *bundle.transport, config);
  if (oracle_rates) {
    harness.install_rates(rates);
  } else {
    harness.install_price_table(rates, rc.lambda, rc.beta, rc.iterations);
  }
  if (run_sink != nullptr || want_health) {
    harness.set_metric_sink(metric_sink);
    harness.set_span_sink(span_sink);
  }

  std::printf("# omnc_emu: %s over %s, %d nodes, %d generations of %u x %u B, "
              "clock %s, speedup %.0fx, seed %llu\n",
              topology_name.c_str(), transport_name.c_str(), graph.size(),
              config.node.max_generations,
              config.node.coding.generation_blocks,
              config.node.coding.block_bytes,
              vtime::clock_mode_name(config.clock_mode), config.speedup,
              static_cast<unsigned long long>(seed));
  if (!code_spec.is_dense()) {
    std::printf("# code family: %s\n",
                code_spec.clamped_for(config.node.coding).selector().c_str());
  }
  if (bundle.fault != nullptr) {
    std::printf("# fault plan: %s\n",
                bundle.fault->plan().describe().c_str());
  }
  const emu::EmuRunResult result = harness.run();

  std::printf("completed: %s  decoded data: %s\n",
              result.completed ? "yes" : "NO (timeout)",
              result.data_ok ? "ok" : "MISMATCH");
  std::printf("generations: %d  goodput: %.1f B/s  last ACK at %.3f s  "
              "mean latency %.3f s\n",
              result.generations_completed, result.goodput_bytes_per_s,
              result.last_ack_time, result.mean_ack_latency);
  std::printf("transport: %zu broadcasts (%zu bytes), %zu delivered, "
              "%zu dropped, %zu parse errors\n",
              result.transport.frames_sent, result.transport.bytes_sent,
              result.transport.copies_delivered,
              result.transport.copies_dropped, result.parse_errors);
  if (bundle.fault != nullptr) {
    const emu::FaultStats faults = bundle.fault->fault_stats();
    std::printf("faults: %zu lost, %zu duplicated, %zu reordered, "
                "%zu partition drops, %zu blackout rx drops, "
                "%zu blackout tx suppressed\n",
                faults.lost, faults.duplicated, faults.reordered,
                faults.partition_drops, faults.blackout_rx_drops,
                faults.blackout_tx_suppressed);
  }
  if (result.stall_boosts + result.ack_keepalives + result.resync_requests +
          result.resync_replies + result.price_decays >
      0) {
    std::printf("recovery: %zu stall boosts, %zu ACK keepalives, "
                "%zu resync requests, %zu resync replies, %zu price decays\n",
                result.stall_boosts, result.ack_keepalives,
                result.resync_requests, result.resync_replies,
                result.price_decays);
  }

  if (want_health) {
    // Final snapshot: the run may end mid-interval, so flush the closing
    // state to the same outputs the periodic callback used.
    if (health_stderr) {
      std::fprintf(stderr, "%s\n", health.one_liner().c_str());
    }
    if (!health_path.empty() && !health.write_json(health_path)) {
      std::fprintf(stderr, "cannot write --health-json %s\n",
                   health_path.c_str());
    }
    std::printf("health: hop delay p50 %.6f s p99 %.6f s (%llu hops), "
                "decode p50 %.3f s, %zu anomalies\n",
                health.hop_delay().quantile(50.0),
                health.hop_delay().quantile(99.0),
                static_cast<unsigned long long>(health.hop_delay().count()),
                health.decode_latency().quantile(50.0),
                health.anomalies().size());
    for (const obs::HealthAnomaly& anomaly : health.anomalies()) {
      std::printf("  anomaly t=%.3f %s: %s\n", anomaly.time,
                  anomaly.kind.c_str(), anomaly.detail.c_str());
    }
  }
  if (obs.recorder != nullptr) {
    obs.recorder->record_histogram(run_id, "hop_delay", health.hop_delay());
    obs.recorder->record_histogram(run_id, "decode_latency",
                                   health.decode_latency());
    obs.recorder->record_histogram(run_id, "stall_wait", health.stall_wait());
  }

  // Link-probe estimates vs the topology's true probabilities.
  if (config.node.probe_window_s > 0.0 && !result.probe_reports.empty()) {
    double abs_error = 0.0;
    int probed = 0;
    for (std::size_t e = 0; e < graph.edges.size(); ++e) {
      const auto& edge = graph.edges[e];
      for (const wire::ProbeReport& report : result.probe_reports) {
        if (report.reporter_local != edge.to ||
            report.probed_local != edge.from) {
          continue;
        }
        abs_error += std::abs(report.estimate() - edge.p);
        ++probed;
        if (obs.recorder != nullptr) {
          obs.recorder->record_probe(0, static_cast<int>(e), edge.from,
                                     edge.to, edge.p, report.estimate());
        }
        break;
      }
    }
    if (probed > 0) {
      std::printf("probe: mean |p_hat - p| over %d links: %.3f\n", probed,
                  abs_error / probed);
    }
  }

  json.record("omnc_emu", params, "goodput_bytes_per_s",
              result.goodput_bytes_per_s);
  json.record("omnc_emu", params, "generations_completed",
              result.generations_completed);
  json.record("omnc_emu", params, "mean_ack_latency_s",
              result.mean_ack_latency);
  json.record("omnc_emu", params, "last_ack_time_s", result.last_ack_time);
  json.record("omnc_emu", params, "completed", result.completed ? 1.0 : 0.0);
  json.record("omnc_emu", params, "data_ok", result.data_ok ? 1.0 : 0.0);
  json.record("omnc_emu", params, "frames_sent",
              static_cast<double>(result.transport.frames_sent));
  json.record("omnc_emu", params, "copies_delivered",
              static_cast<double>(result.transport.copies_delivered));
  json.record("omnc_emu", params, "copies_dropped",
              static_cast<double>(result.transport.copies_dropped));
  json.record("omnc_emu", params, "parse_errors",
              static_cast<double>(result.parse_errors));
  if (auto_tune) {
    json.record("omnc_emu", params, "tuned_gen_blocks",
                static_cast<double>(tuned.generation_blocks));
    json.record("omnc_emu", params, "tuned_send_count",
                static_cast<double>(tuned.send_count));
    json.record("omnc_emu", params, "tuned_redundancy", tuned.redundancy);
    json.record("omnc_emu", params, "tuned_success_prob", tuned.success_prob);
  }
  if (want_health) {
    // Histogram-derived metrics are deterministic under --clock det (bucket
    // floors, exact counts), so bench_compare can gate them like any other.
    json.record("omnc_emu", params, "hop_delay_p50_s",
                health.hop_delay().quantile(50.0));
    json.record("omnc_emu", params, "hop_delay_p99_s",
                health.hop_delay().quantile(99.0));
    json.record("omnc_emu", params, "decode_latency_p50_s",
                health.decode_latency().quantile(50.0));
    json.record("omnc_emu", params, "health_anomalies",
                static_cast<double>(health.anomalies().size()));
  }
  if (bundle.fault != nullptr) {
    const emu::FaultStats faults = bundle.fault->fault_stats();
    json.record("omnc_emu", params, "fault_lost",
                static_cast<double>(faults.lost));
    json.record("omnc_emu", params, "fault_duplicated",
                static_cast<double>(faults.duplicated));
    json.record("omnc_emu", params, "fault_reordered",
                static_cast<double>(faults.reordered));
    json.record("omnc_emu", params, "fault_partition_drops",
                static_cast<double>(faults.partition_drops));
    json.record("omnc_emu", params, "fault_blackout_drops",
                static_cast<double>(faults.blackout_rx_drops +
                                    faults.blackout_tx_suppressed));
    json.record("omnc_emu", params, "stall_boosts",
                static_cast<double>(result.stall_boosts));
    json.record("omnc_emu", params, "ack_keepalives",
                static_cast<double>(result.ack_keepalives));
    json.record("omnc_emu", params, "resync_requests",
                static_cast<double>(result.resync_requests));
    json.record("omnc_emu", params, "price_decays",
                static_cast<double>(result.price_decays));
  }

  bool ok = result.completed && result.data_ok;

  if (options.get_bool("cross-check", false)) {
    // Same topology, same coding geometry, fading off for comparability.
    protocols::ProtocolConfig sim_config;
    sim_config.coding = config.node.coding;
    sim_config.mac.capacity_bytes_per_s = capacity;
    sim_config.mac.slot_bytes = coding::CodedPacket::kHeaderBytes +
                                config.node.coding.generation_blocks +
                                config.node.coding.block_bytes;
    sim_config.mac.fading.enabled = false;
    sim_config.cbr_bytes_per_s = config.node.cbr_bytes_per_s;
    sim_config.max_generations = config.node.max_generations;
    sim_config.max_sim_seconds = 600.0;
    sim_config.seed = seed;
    protocols::OmncProtocol sim(topo, graph, sim_config, protocols::OmncConfig{});
    const protocols::SessionResult sim_result = sim.run();
    const double ratio =
        sim_result.throughput_bytes_per_s > 0.0
            ? result.goodput_bytes_per_s / sim_result.throughput_bytes_per_s
            : 0.0;
    json.record("omnc_emu", params, "sim_goodput_bytes_per_s",
                sim_result.throughput_bytes_per_s);
    json.record("omnc_emu", params, "goodput_ratio", ratio);

    if (config.clock_mode == vtime::ClockMode::kDeterministic) {
      // Deterministic runs owe more than a tolerance band: a second run on
      // a pristine transport stack must reproduce the first bit for bit.
      // The sim ratio stays informational (the slot MAC and the emulated
      // channel are different processes; equality there is not expected).
      TransportBundle replay_bundle = make_transport();
      emu::EmuHarness replay(graph, *replay_bundle.transport, config);
      if (options.get_bool("oracle-rates", false)) {
        replay.install_rates(rates);
      } else {
        replay.install_price_table(rates, rc.lambda, rc.beta, rc.iterations);
      }
      const emu::EmuRunResult second = replay.run();
      const bool exact =
          second.completed == result.completed &&
          second.data_ok == result.data_ok &&
          second.generations_completed == result.generations_completed &&
          second.goodput_bytes_per_s == result.goodput_bytes_per_s &&
          second.last_ack_time == result.last_ack_time &&
          second.mean_ack_latency == result.mean_ack_latency &&
          second.ack_latencies == result.ack_latencies &&
          second.data_packets_sent == result.data_packets_sent &&
          second.transport.frames_sent == result.transport.frames_sent &&
          second.transport.copies_delivered ==
              result.transport.copies_delivered &&
          second.transport.copies_dropped == result.transport.copies_dropped;
      std::printf("cross-check: sim goodput %.1f B/s (%d gens), emu/sim "
                  "ratio %.3f (informational); deterministic replay %s\n",
                  sim_result.throughput_bytes_per_s,
                  sim_result.generations_completed, ratio,
                  exact ? "EXACT" : "DIVERGED");
      if (!exact) {
        std::printf("replay divergence: goodput %.17g vs %.17g, gens %d vs "
                    "%d, frames %zu vs %zu\n",
                    result.goodput_bytes_per_s, second.goodput_bytes_per_s,
                    result.generations_completed,
                    second.generations_completed,
                    result.transport.frames_sent,
                    second.transport.frames_sent);
      }
      json.record("omnc_emu", params, "replay_exact", exact ? 1.0 : 0.0);
      ok = ok && exact;
    } else {
      const double tol_lo = options.get_double("tol-lo", 0.2);
      const double tol_hi = options.get_double("tol-hi", 3.5);
      const bool within = ratio >= tol_lo && ratio <= tol_hi;
      std::printf("cross-check: sim goodput %.1f B/s (%d gens), emu/sim "
                  "ratio %.3f, tolerance [%.2f, %.2f] — %s\n",
                  sim_result.throughput_bytes_per_s,
                  sim_result.generations_completed, ratio, tol_lo, tol_hi,
                  within ? "ok" : "OUT OF TOLERANCE");
      ok = ok && within;
    }
  }

  bench::finish_obs(obs);
  return ok ? 0 : 1;
}

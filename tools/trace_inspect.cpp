// Offline trace inspector: replays a JSONL trace (bench --trace PATH)
// through the live metric sinks and reports what the run looked like.
//
// Usage: trace_inspect <trace.jsonl> [--summary] [--queues] [--edges]
//                      [--latency] [--convergence] [--probes] [--transport]
//                      [--sessions] [--faults] [--registry] [--verify]
//                      [--check-json PATH] [--run N]
//
//   --summary       per-run result table (default when nothing is selected)
//   --queues        per-node queue timelines rebuilt by QueueTimelineSink
//   --edges         per-edge innovative-delivery counts (Fig. 4 raw data)
//   --latency       generation ACK latency percentiles per session
//   --convergence   rate-control gamma-bar vs iteration (Fig. 1 curve)
//   --probes        link-prober estimates vs true reception probabilities
//   --transport     emulation transport summary (emu_send / emu_drop /
//                   emu_deliver / emu_parse_error events, per-link loss)
//   --sessions      per-session breakdown of a session-mux run (omnc_emu
//                   --sessions N): generations ACKed, ACK latency, and
//                   session-attributed drops, grouped by wire session id;
//                   session-0 (unattributable transport) events are
//                   reported separately
//   --faults        fault-injection summary (floss / freord / fdup / fpart /
//                   fblack events per kind and per link, truncated-datagram
//                   parse errors, fault activity time span)
//   --registry      wall-clock metrics snapshot recorded in the trace
//   --verify        replay every run and compare each reconstructed metric
//                   with the recorded ground truth (exact double equality);
//                   exit code 1 on any mismatch
//   --check-json    cross-check a bench's --json output against the trace
//   --timeline G    per-packet causal timeline of generation G ("all" for
//                   every generation) rebuilt from span records, plus a
//                   DAG-completeness check: every decoded generation must
//                   walk back to source roots (exit 1 when it does not)
//   --histograms    latency histograms recorded in the trace (hop delay,
//                   decode latency, stall wait): count/mean/percentiles
//   --codes         per-run code-family summary from span records:
//                   innovative / non-innovative receive counts, mean pivot
//                   column, and the systematic fast-path hit ratio
//   --diff B.jsonl  cross-run regression triage: compare this trace's
//                   histograms and event counts against trace B
//   --run N         restrict the report to one run id
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/options.h"
#include "common/table.h"
#include "obs/trace_inspect.h"
#include "obs/trace_reader.h"

using namespace omnc;

namespace {

bool run_selected(const Options& options, const obs::RecordedRun& run) {
  return !options.has("run") ||
         options.get_int("run", -1) == static_cast<long>(run.id);
}

void print_summary(const obs::Trace& trace, const Options& options) {
  std::printf("trace: tool=%s build=%s schema=%d params=\"%s\"\n",
              trace.tool.c_str(), trace.build.c_str(), trace.schema,
              trace.params.c_str());
  std::printf("%zu runs, %zu probe samples, %zu registry rows\n\n",
              trace.runs.size(), trace.probes.size(), trace.registry.size());
  TextTable table({"run", "protocol", "sessions", "events", "gens",
                   "thr B/s", "thr/gen B/s", "mean queue", "tx"});
  for (const auto& run : trace.runs) {
    if (!run_selected(options, run)) continue;
    for (std::size_t s = 0; s < run.results.size(); ++s) {
      const auto& r = run.results[s];
      table.add_row(
          {std::to_string(run.id) +
               (run.results.size() > 1 ? "." + std::to_string(s) : ""),
           run.context.protocol, std::to_string(run.results.size()),
           std::to_string(run.events.size()),
           std::to_string(r.generations_completed),
           TextTable::fmt(r.throughput_bytes_per_s, 1),
           TextTable::fmt(r.throughput_per_generation, 1),
           TextTable::fmt(r.mean_queue, 3),
           std::to_string(r.transmissions)});
    }
  }
  std::printf("%s\n", table.render().c_str());
}

void print_queues(const obs::Trace& trace, const Options& options) {
  for (const auto& run : trace.runs) {
    if (!run_selected(options, run) || run.graphs.empty()) continue;
    const obs::ReplayedRun replay = obs::replay_run(run);
    std::printf("-- run %d (%s): queue time averages --\n", run.id,
                run.context.protocol.c_str());
    TextTable table({"node", "samples", "time avg", "max"});
    for (std::size_t node = 0; node < replay.queue_timelines.size(); ++node) {
      const auto& timeline = replay.queue_timelines[node];
      if (timeline.empty()) continue;
      double max_queue = 0.0;
      for (const auto& sample : timeline) {
        max_queue = std::max(max_queue, sample.queue);
      }
      table.add_row({std::to_string(node), std::to_string(timeline.size()),
                     TextTable::fmt(replay.queue_time_average[node], 3),
                     TextTable::fmt(max_queue, 0)});
    }
    std::printf("%s", table.render().c_str());
    std::printf("channel-wide mean over transmitting nodes: %.6f\n\n",
                replay.shared_mean_queue);
  }
}

void print_edges(const obs::Trace& trace, const Options& options) {
  for (const auto& run : trace.runs) {
    if (!run_selected(options, run) || run.graphs.empty()) continue;
    const obs::ReplayedRun replay = obs::replay_run(run);
    std::printf("-- run %d (%s): innovative deliveries per edge --\n", run.id,
                run.context.protocol.c_str());
    TextTable table({"session", "edge", "from->to", "p", "deliveries"});
    for (std::size_t s = 0; s < replay.sessions.size(); ++s) {
      const auto& graph = run.graphs[s];
      const auto& deliveries = replay.sessions[s].edge_deliveries;
      for (std::size_t e = 0; e < deliveries.size(); ++e) {
        const auto& edge = graph.edges[e];
        table.add_row({std::to_string(s), std::to_string(e),
                       std::to_string(edge.from) + "->" +
                           std::to_string(edge.to),
                       TextTable::fmt(edge.p, 2),
                       std::to_string(deliveries[e])});
      }
    }
    std::printf("%s\n", table.render().c_str());
  }
}

void print_latency(const obs::Trace& trace, const Options& options) {
  std::printf("-- generation ACK latency (seconds) --\n");
  TextTable table({"run", "protocol", "session", "gens", "p50", "p90", "p99",
                   "max"});
  for (const auto& run : trace.runs) {
    if (!run_selected(options, run) || run.graphs.empty()) continue;
    const obs::ReplayedRun replay = obs::replay_run(run);
    for (std::size_t s = 0; s < replay.sessions.size(); ++s) {
      const auto& latencies = replay.sessions[s].ack_latencies;
      if (latencies.empty()) continue;
      table.add_row(
          {std::to_string(run.id), run.context.protocol, std::to_string(s),
           std::to_string(latencies.size()),
           TextTable::fmt(obs::percentile(latencies, 50.0), 3),
           TextTable::fmt(obs::percentile(latencies, 90.0), 3),
           TextTable::fmt(obs::percentile(latencies, 99.0), 3),
           TextTable::fmt(*std::max_element(latencies.begin(),
                                            latencies.end()),
                          3)});
    }
  }
  std::printf("%s\n", table.render().c_str());
}

void print_convergence(const obs::Trace& trace, const Options& options) {
  for (const auto& run : trace.runs) {
    if (!run_selected(options, run) || run.opt_gamma.empty()) continue;
    std::printf("-- run %d (%s): rate-control convergence --\n", run.id,
                run.context.protocol.c_str());
    TextTable table({"iter", "gamma", "mean b"});
    const int total = static_cast<int>(run.opt_gamma.size());
    for (int t = 0; t < total; t += (t < 10 ? 1 : (t < 50 ? 5 : 25))) {
      const auto& b = run.opt_b[static_cast<std::size_t>(t)];
      double mean_b = 0.0;
      for (double value : b) mean_b += value;
      if (!b.empty()) mean_b /= static_cast<double>(b.size());
      table.add_row({std::to_string(t + 1),
                     TextTable::fmt(run.opt_gamma[static_cast<std::size_t>(t)], 1),
                     TextTable::fmt(mean_b, 1)});
    }
    std::printf("%s", table.render().c_str());
    std::printf("final gamma after %d iterations: %.17g\n\n", total,
                run.opt_gamma.back());
  }
}

void print_probes(const obs::Trace& trace) {
  if (trace.probes.empty()) {
    std::printf("no probe records in trace\n");
    return;
  }
  double abs_error = 0.0;
  TextTable table({"session", "edge", "from->to", "p true", "p est", "error"});
  for (const auto& probe : trace.probes) {
    abs_error += std::abs(probe.p_estimate - probe.p_true);
    table.add_row({std::to_string(probe.session), std::to_string(probe.edge),
                   std::to_string(probe.from) + "->" +
                       std::to_string(probe.to),
                   TextTable::fmt(probe.p_true, 3),
                   TextTable::fmt(probe.p_estimate, 3),
                   TextTable::fmt(probe.p_estimate - probe.p_true, 3)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("mean |p_hat - p| over %zu probed links: %.4f\n\n",
              trace.probes.size(),
              abs_error / static_cast<double>(trace.probes.size()));
}

void print_transport(const obs::Trace& trace, const Options& options) {
  using Type = protocols::MetricEvent::Type;
  bool printed = false;
  for (const auto& run : trace.runs) {
    if (!run_selected(options, run)) continue;
    std::size_t sends = 0;
    std::size_t drops = 0;
    std::size_t delivers = 0;
    std::size_t parse_errors = 0;
    double sent_bytes = 0.0;
    // Per directed link (tx_local -> rx_local): delivered / dropped copies.
    std::map<std::pair<int, int>, std::pair<std::size_t, std::size_t>> links;
    for (const auto& event : run.events) {
      switch (event.type) {
        case Type::kEmuSend:
          ++sends;
          sent_bytes += event.value;
          break;
        case Type::kEmuDrop:
          ++drops;
          ++links[{event.tx_local, event.rx_local}].second;
          break;
        case Type::kEmuDeliver:
          ++delivers;
          ++links[{event.tx_local, event.rx_local}].first;
          break;
        case Type::kEmuParseError:
          ++parse_errors;
          break;
        default:
          break;
      }
    }
    if (sends + drops + delivers + parse_errors == 0) continue;
    printed = true;
    std::printf("-- run %d (%s): emulation transport --\n", run.id,
                run.context.protocol.c_str());
    std::printf("%zu broadcasts (%.0f bytes), %zu copies delivered, "
                "%zu copies dropped, %zu parse errors\n",
                sends, sent_bytes, delivers, drops, parse_errors);
    TextTable table({"link", "delivered", "dropped", "loss"});
    for (const auto& [link, counts] : links) {
      const auto& [delivered, dropped] = counts;
      const std::size_t total = delivered + dropped;
      table.add_row({std::to_string(link.first) + "->" +
                         std::to_string(link.second),
                     std::to_string(delivered), std::to_string(dropped),
                     total > 0 ? TextTable::fmt(static_cast<double>(dropped) /
                                                    static_cast<double>(total),
                                                3)
                               : "-"});
    }
    std::printf("%s\n", table.render().c_str());
  }
  if (!printed) std::printf("no transport events in trace\n");
}

/// Per-session breakdown of a session-mux run: every kGenerationAck names
/// its session and carries the decode latency, and demux-verified drops are
/// attributed by the frame's session id.  Span records contribute the
/// per-session innovative-receive count.  Events with session 0 (pure
/// transport byte counts, truncations) are unattributable by design and
/// reported as their own row.
void print_sessions(const obs::Trace& trace, const Options& options) {
  using Type = protocols::MetricEvent::Type;
  bool printed = false;
  for (const auto& run : trace.runs) {
    if (!run_selected(options, run)) continue;
    struct SessionRow {
      std::size_t acks = 0;
      double last_ack = 0.0;
      double latency_sum = 0.0;
      double latency_max = 0.0;
      std::size_t drops = 0;
      std::size_t innovative = 0;
    };
    std::map<std::uint32_t, SessionRow> rows;  // keyed by wire session id
    std::size_t unattributed = 0;
    for (const auto& event : run.events) {
      switch (event.type) {
        case Type::kGenerationAck:
          if (event.session == 0) break;
          {
            SessionRow& row = rows[event.session];
            ++row.acks;
            row.last_ack = std::max(row.last_ack, event.time);
            row.latency_sum += event.value;
            row.latency_max = std::max(row.latency_max, event.value);
          }
          break;
        case Type::kEmuDrop:
        case Type::kEmuFaultLoss:
        case Type::kEmuFaultPartition:
        case Type::kEmuFaultBlackout:
          if (event.session != 0) {
            ++rows[event.session].drops;
          } else {
            ++unattributed;
          }
          break;
        case Type::kEmuSend:
        case Type::kEmuDeliver:
        case Type::kEmuParseError:
          ++unattributed;
          break;
        default:
          break;
      }
    }
    for (const auto& span : run.spans) {
      if (span.kind == obs::SpanEvent::Kind::kInnovate && span.session != 0) {
        ++rows[span.session].innovative;
      }
    }
    if (rows.empty()) continue;
    printed = true;
    std::printf("-- run %d (%s): per-session progress --\n", run.id,
                run.context.protocol.c_str());
    TextTable table({"session", "gens", "last ack", "mean lat", "max lat",
                     "drops", "innovative"});
    for (const auto& [id, row] : rows) {
      table.add_row(
          {std::to_string(id), std::to_string(row.acks),
           TextTable::fmt(row.last_ack, 3),
           row.acks > 0
               ? TextTable::fmt(row.latency_sum /
                                    static_cast<double>(row.acks), 3)
               : "-",
           TextTable::fmt(row.latency_max, 3), std::to_string(row.drops),
           std::to_string(row.innovative)});
    }
    std::printf("%s", table.render().c_str());
    std::printf("%zu sessions, %zu unattributed transport events "
                "(session 0)\n\n",
                rows.size(), unattributed);
  }
  if (!printed) {
    std::printf("no session-attributed events in trace (single-session "
                "capture predating session stamping, or tracing off)\n");
  }
}

void print_faults(const obs::Trace& trace, const Options& options) {
  using Type = protocols::MetricEvent::Type;
  const auto fault_name = [](Type type) -> const char* {
    switch (type) {
      case Type::kEmuFaultLoss: return "loss";
      case Type::kEmuFaultReorder: return "reorder";
      case Type::kEmuFaultDup: return "duplicate";
      case Type::kEmuFaultPartition: return "partition";
      case Type::kEmuFaultBlackout: return "blackout";
      default: return nullptr;
    }
  };
  bool printed = false;
  for (const auto& run : trace.runs) {
    if (!run_selected(options, run)) continue;
    // Per fault kind: count; per directed link: per-kind counts.
    std::map<std::string, std::size_t> kinds;
    std::map<std::pair<int, int>, std::map<std::string, std::size_t>> links;
    std::size_t truncated = 0;
    double first = 0.0;
    double last = 0.0;
    std::size_t total = 0;
    for (const auto& event : run.events) {
      if (event.type == Type::kEmuParseError && event.generation == 1) {
        ++truncated;
        continue;
      }
      const char* name = fault_name(event.type);
      if (name == nullptr) continue;
      if (total == 0) first = event.time;
      last = event.time;
      ++total;
      ++kinds[name];
      ++links[{event.tx_local, event.rx_local}][name];
    }
    if (total + truncated == 0) continue;
    printed = true;
    std::printf("-- run %d (%s): injected faults --\n", run.id,
                run.context.protocol.c_str());
    std::printf("%zu fault events between t=%.3f s and t=%.3f s, "
                "%zu truncated datagrams\n",
                total, first, last, truncated);
    TextTable kind_table({"kind", "events"});
    for (const auto& [kind, count] : kinds) {
      kind_table.add_row({kind, std::to_string(count)});
    }
    std::printf("%s", kind_table.render().c_str());
    TextTable link_table({"link", "loss", "reorder", "dup", "part", "black"});
    const auto cell = [](const std::map<std::string, std::size_t>& row,
                         const char* key) {
      const auto it = row.find(key);
      return it != row.end() ? std::to_string(it->second) : std::string("-");
    };
    for (const auto& [link, row] : links) {
      // tx=-1 marks a sender-side blackout suppression (no receiver).
      const std::string from =
          link.first >= 0 ? std::to_string(link.first) : "*";
      const std::string to =
          link.second >= 0 ? std::to_string(link.second) : "*";
      link_table.add_row({from + "->" + to, cell(row, "loss"),
                          cell(row, "reorder"), cell(row, "duplicate"),
                          cell(row, "partition"), cell(row, "blackout")});
    }
    std::printf("%s\n", link_table.render().c_str());
  }
  if (!printed) std::printf("no fault events in trace\n");
}

void print_registry(const obs::Trace& trace) {
  if (trace.registry.empty()) {
    std::printf("no registry snapshot in trace\n");
    return;
  }
  TextTable table({"metric", "kind", "count", "value", "p50 ns", "p99 ns"});
  for (const auto& row : trace.registry) {
    table.add_row({row.name, row.kind, std::to_string(row.count),
                   TextTable::fmt(row.value, 6), TextTable::fmt(row.p50_ns, 0),
                   TextTable::fmt(row.p99_ns, 0)});
  }
  std::printf("%s\n", table.render().c_str());
}

std::string span_name(const obs::SpanId& span) {
  return "(" + std::to_string(span.origin) + "," + std::to_string(span.seq) +
         ")";
}

std::string span_list(const std::vector<obs::SpanId>& spans) {
  std::string out;
  for (const obs::SpanId& span : spans) {
    if (!out.empty()) out += " ";
    out += span_name(span);
  }
  return out;
}

/// Per-packet causal timeline of one generation (or all), rebuilt from span
/// records, plus the DAG-completeness check the acceptance criterion names:
/// every decoded generation's decode basis must walk back through recorded
/// parents to source roots.  Exit 1 when any decoded DAG is incomplete.
int print_timeline(const obs::Trace& trace, const Options& options) {
  const std::string which = options.get("timeline", "all");
  const bool all = which.empty() || which == "all" || which == "true";
  const long wanted = all ? -1 : std::strtol(which.c_str(), nullptr, 10);
  int status = 0;
  bool any_spans = false;
  for (const auto& run : trace.runs) {
    if (!run_selected(options, run) || run.spans.empty()) continue;
    any_spans = true;
    const std::vector<obs::SpanDag> dags = obs::build_span_dags(run.spans);
    for (const obs::SpanDag& dag : dags) {
      if (!all && static_cast<long>(dag.generation) != wanted) continue;
      std::printf("-- run %d generation %u: %zu spans, %zu events%s --\n",
                  run.id, dag.generation, dag.nodes.size(), dag.events.size(),
                  dag.decoded ? ", decoded" : "");
      TextTable table({"t", "event", "node", "peer", "span", "rank",
                       "parents"});
      for (const obs::SpanEvent& event : dag.events) {
        const bool root = event.kind == obs::SpanEvent::Kind::kEnqueue &&
                          event.parents.empty();
        table.add_row(
            {TextTable::fmt(event.time, 6), obs::span_kind_name(event.kind),
             event.node >= 0 ? std::to_string(event.node) : "-",
             event.peer >= 0 ? std::to_string(event.peer) : "-",
             span_name(event.span),
             event.rank > 0 ? std::to_string(event.rank) : "-",
             root ? "source" : span_list(event.parents)});
      }
      std::printf("%s", table.render().c_str());
      if (dag.decoded) {
        std::printf("decoded at t=%.6f by %s, basis: %s\n", dag.decode_time,
                    span_name(dag.decode_span).c_str(),
                    span_list(dag.decode_basis).c_str());
      }
      std::printf("\n");
    }
    const obs::SpanDagCheck check = obs::check_span_dags(dags);
    for (const auto& problem : check.problems) {
      std::fprintf(stderr, "INCOMPLETE: run %d: %s\n", run.id,
                   problem.c_str());
    }
    std::printf("timeline: run %d: %zu decoded generations, causal DAG %s\n",
                run.id, check.decoded_generations,
                check.complete ? "complete (source-rooted)" : "INCOMPLETE");
    if (!check.complete) status = 1;
  }
  if (!any_spans) {
    std::printf("no span records in trace (schema < 2 or tracing off)\n");
  }
  return status;
}

void print_codes(const obs::Trace& trace, const Options& options) {
  // Per-run code-family summary from the span stream: how many receives were
  // innovative, where the innovative packets landed (mean pivot column), and
  // how often the systematic zero-work fast path fired.  Pre-family traces
  // (no code_family in run_begin, no pv/uc on spans) report as dense with
  // unknown pivots.
  using Kind = obs::SpanEvent::Kind;
  bool printed = false;
  TextTable table({"run", "family", "innovative", "non-innov", "mean pivot",
                   "uncoded hits", "systematic ratio"});
  for (const auto& run : trace.runs) {
    if (!run_selected(options, run)) continue;
    std::size_t receives = 0;
    std::size_t innovative = 0;
    std::size_t uncoded = 0;
    std::size_t pivots = 0;
    double pivot_sum = 0.0;
    for (const auto& event : run.spans) {
      if (event.kind == Kind::kReceive) ++receives;
      if (event.kind != Kind::kInnovate) continue;
      ++innovative;
      if (event.uncoded) ++uncoded;
      if (event.pivot >= 0) {
        ++pivots;
        pivot_sum += static_cast<double>(event.pivot);
      }
    }
    if (receives == 0 && innovative == 0) continue;
    printed = true;
    const std::string family = run.context.code_family.empty()
                                   ? "dense"
                                   : run.context.code_family;
    table.add_row(
        {std::to_string(run.id), family, std::to_string(innovative),
         std::to_string(receives - innovative),
         pivots > 0
             ? TextTable::fmt(pivot_sum / static_cast<double>(pivots), 2)
             : "-",
         std::to_string(uncoded),
         innovative > 0 ? TextTable::fmt(static_cast<double>(uncoded) /
                                             static_cast<double>(innovative),
                                         3)
                        : "-"});
  }
  if (printed) {
    std::printf("%s\n", table.render().c_str());
  } else {
    std::printf("no span records in trace (schema < 2 or tracing off)\n");
  }
}

void print_histograms(const obs::Trace& trace, const Options& options) {
  bool printed = false;
  TextTable table({"run", "name", "count", "mean", "p50", "p90", "p99",
                   "min", "max"});
  for (const auto& run : trace.runs) {
    if (!run_selected(options, run)) continue;
    for (const auto& [name, hist] : run.histograms) {
      printed = true;
      table.add_row({std::to_string(run.id), name,
                     std::to_string(hist.count()),
                     TextTable::fmt(hist.mean(), 6),
                     TextTable::fmt(hist.quantile(50.0), 6),
                     TextTable::fmt(hist.quantile(90.0), 6),
                     TextTable::fmt(hist.quantile(99.0), 6),
                     TextTable::fmt(hist.min(), 6),
                     TextTable::fmt(hist.max(), 6)});
    }
  }
  if (!printed) {
    std::printf("no histogram records in trace\n");
    return;
  }
  std::printf("-- recorded latency histograms (seconds) --\n%s\n",
              table.render().c_str());
}

/// Cross-run regression triage: compares this trace's recorded histograms
/// and event/span counts against a second trace, run by run.  Informational
/// (always exit 0) — chaos runs legitimately differ; the report is for
/// eyeballing which latency population moved.
int diff_traces(const obs::Trace& a, const std::string& b_path) {
  obs::Trace b;
  std::string error;
  if (!obs::read_trace(b_path, &b, &error)) {
    std::fprintf(stderr, "error reading diff trace: %s\n", error.c_str());
    return 2;
  }
  std::printf("-- diff: A=current trace, B=%s --\n", b_path.c_str());
  const std::size_t runs = std::min(a.runs.size(), b.runs.size());
  if (a.runs.size() != b.runs.size()) {
    std::printf("run counts differ: A has %zu, B has %zu — comparing the "
                "first %zu\n",
                a.runs.size(), b.runs.size(), runs);
  }
  TextTable table({"run", "quantity", "A", "B", "delta"});
  const auto row = [&table](int run, const std::string& what, double va,
                            double vb, int prec) {
    table.add_row({std::to_string(run), what, TextTable::fmt(va, prec),
                   TextTable::fmt(vb, prec), TextTable::fmt(vb - va, prec)});
  };
  for (std::size_t r = 0; r < runs; ++r) {
    const obs::RecordedRun& ra = a.runs[r];
    const obs::RecordedRun& rb = b.runs[r];
    row(ra.id, "events", static_cast<double>(ra.events.size()),
        static_cast<double>(rb.events.size()), 0);
    row(ra.id, "spans", static_cast<double>(ra.spans.size()),
        static_cast<double>(rb.spans.size()), 0);
    // Histograms matched by name; one-sided names still show (other side 0).
    std::map<std::string, std::pair<const obs::Histogram*,
                                    const obs::Histogram*>> by_name;
    for (const auto& [name, hist] : ra.histograms) {
      by_name[name].first = &hist;
    }
    for (const auto& [name, hist] : rb.histograms) {
      by_name[name].second = &hist;
    }
    const obs::Histogram empty;
    for (const auto& [name, pair] : by_name) {
      const obs::Histogram& ha = pair.first ? *pair.first : empty;
      const obs::Histogram& hb = pair.second ? *pair.second : empty;
      row(ra.id, name + ".count", static_cast<double>(ha.count()),
          static_cast<double>(hb.count()), 0);
      row(ra.id, name + ".p50", ha.quantile(50.0), hb.quantile(50.0), 6);
      row(ra.id, name + ".p99", ha.quantile(99.0), hb.quantile(99.0), 6);
    }
  }
  std::printf("%s\n", table.render().c_str());
  return 0;
}

int verify(const obs::Trace& trace) {
  const obs::VerifyReport report = obs::verify_trace(trace);
  for (const auto& mismatch : report.mismatches) {
    std::fprintf(stderr, "MISMATCH: %s\n", mismatch.c_str());
  }
  std::printf("verify: %zu comparisons over %zu runs — %s\n",
              report.comparisons, trace.runs.size(),
              report.ok ? "all exact" : "FAILED");
  return report.ok ? 0 : 1;
}

/// Cross-checks a bench's --json records against the trace.  Understood
/// metrics: fig1's "iterations" (opt_iter record count) and
/// "gamma_distributed" (last recorded gamma) — the CI round-trip gate.
int check_json(const obs::Trace& trace, const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "r");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::string text;
  char buffer[4096];
  std::size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    text.append(buffer, n);
  }
  std::fclose(file);

  // Find the rate-control run the fig1 records describe.
  const obs::RecordedRun* rc_run = nullptr;
  for (const auto& run : trace.runs) {
    if (!run.opt_gamma.empty()) rc_run = &run;
  }

  int checked = 0;
  int failed = 0;
  auto check_metric = [&](const char* metric, double expected) {
    const std::string needle = std::string("\"metric\": \"") + metric + "\"";
    const std::size_t at = text.find(needle);
    if (at == std::string::npos) return;
    const std::size_t value_at = text.find("\"value\":", at);
    if (value_at == std::string::npos) return;
    const double value = std::strtod(text.c_str() + value_at + 8, nullptr);
    ++checked;
    if (value != expected) {
      ++failed;
      std::fprintf(stderr,
                   "MISMATCH: json %s = %.17g but trace says %.17g\n", metric,
                   value, expected);
    }
  };
  if (rc_run != nullptr) {
    check_metric("iterations", static_cast<double>(rc_run->opt_gamma.size()));
    check_metric("gamma_distributed", rc_run->opt_gamma.back());
  }
  std::printf("check-json: %d metrics checked against the trace — %s\n",
              checked, failed == 0 ? "all exact" : "FAILED");
  if (checked == 0) {
    std::fprintf(stderr, "check-json: nothing to compare (no opt_iter "
                         "records or no known metrics in %s)\n",
                 path.c_str());
    return 1;
  }
  return failed == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Options options(argc, argv);
  if (options.positional().empty()) {
    std::fprintf(stderr, "usage: trace_inspect <trace.jsonl> [--summary] "
                         "[--queues] [--edges] [--latency] [--convergence] "
                         "[--probes] [--transport] [--sessions] [--faults] "
                         "[--registry] "
                         "[--timeline G|all] [--histograms] [--codes] "
                         "[--diff B.jsonl] "
                         "[--verify] [--check-json PATH] [--run N]\n");
    return 2;
  }

  obs::Trace trace;
  std::string error;
  if (!obs::read_trace(options.positional().front(), &trace, &error)) {
    std::fprintf(stderr, "error reading trace: %s\n", error.c_str());
    return 2;
  }

  const bool any_section =
      options.get_bool("summary", false) || options.get_bool("queues", false) ||
      options.get_bool("edges", false) || options.get_bool("latency", false) ||
      options.get_bool("convergence", false) ||
      options.get_bool("probes", false) ||
      options.get_bool("transport", false) ||
      options.get_bool("sessions", false) ||
      options.get_bool("faults", false) ||
      options.get_bool("registry", false) || options.get_bool("verify", false) ||
      options.has("timeline") || options.get_bool("histograms", false) ||
      options.get_bool("codes", false) || options.has("diff") ||
      options.has("check-json");

  if (!any_section || options.get_bool("summary", false)) {
    print_summary(trace, options);
  }
  if (options.get_bool("queues", false)) print_queues(trace, options);
  if (options.get_bool("edges", false)) print_edges(trace, options);
  if (options.get_bool("latency", false)) print_latency(trace, options);
  if (options.get_bool("convergence", false)) print_convergence(trace, options);
  if (options.get_bool("probes", false)) print_probes(trace);
  if (options.get_bool("transport", false)) print_transport(trace, options);
  if (options.get_bool("sessions", false)) print_sessions(trace, options);
  if (options.get_bool("faults", false)) print_faults(trace, options);
  if (options.get_bool("registry", false)) print_registry(trace);
  if (options.get_bool("codes", false)) print_codes(trace, options);
  if (options.get_bool("histograms", false)) print_histograms(trace, options);

  int status = 0;
  if (options.has("timeline")) status |= print_timeline(trace, options);
  if (options.has("diff")) status |= diff_traces(trace, options.get("diff", ""));
  if (options.get_bool("verify", false)) status |= verify(trace);
  if (options.has("check-json")) {
    status |= check_json(trace, options.get("check-json", ""));
  }
  return status;
}
